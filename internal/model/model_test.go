package model_test

import (
	"testing"

	"ufork/internal/model"
)

func machines() []*model.Machine {
	return []*model.Machine{model.UFork(2), model.Posix(2), model.VMClone(2)}
}

func TestMachineInvariants(t *testing.T) {
	for _, m := range machines() {
		if m.Cores != 2 {
			t.Errorf("%s: cores = %d", m.Name, m.Cores)
		}
		if m.SyscallEnter <= 0 || m.SyscallExit <= 0 || m.SyscallBase <= 0 {
			t.Errorf("%s: non-positive syscall costs", m.Name)
		}
		if m.CtxSwitch <= 0 || m.PageCopy <= 0 || m.PTECopy <= 0 || m.PageFault <= 0 {
			t.Errorf("%s: non-positive core costs", m.Name)
		}
		if m.TocttouBytesPerNs <= 0 {
			t.Errorf("%s: TOCTTOU bandwidth must be positive", m.Name)
		}
		if m.FSWriteNsPerKB <= 0 || m.FSReadNsPerKB <= 0 || m.FSSync <= 0 {
			t.Errorf("%s: non-positive FS costs", m.Name)
		}
	}
}

func TestModelDistinguishers(t *testing.T) {
	u, p, v := model.UFork(1), model.Posix(1), model.VMClone(1)
	// The design-space distinctions of Table 1.
	if !u.SingleAddressSpace || p.SingleAddressSpace || v.SingleAddressSpace {
		t.Error("address-space knobs wrong")
	}
	if u.TrapSyscalls || !p.TrapSyscalls {
		t.Error("syscall knobs wrong")
	}
	if !u.BigKernelLock || p.BigKernelLock {
		t.Error("SMP knobs wrong")
	}
	// Cost orderings the paper's results rest on.
	if u.SyscallEnter >= p.SyscallEnter {
		t.Error("sealed-cap entry must be cheaper than a trap")
	}
	if u.CtxSwitch >= p.CtxSwitch {
		t.Error("same-AS switch must be cheaper than an AS switch")
	}
	if u.PTECopy >= p.PTECopy {
		t.Error("bulk PTE copy must be cheaper than the CoW object walk")
	}
	if v.DomainCreate == 0 || u.DomainCreate != 0 || p.DomainCreate != 0 {
		t.Error("domain creation belongs to the VM-clone model only")
	}
	if p.VMSpaceSetup == 0 || u.VMSpaceSetup != 0 {
		t.Error("vmspace setup belongs to the multi-AS model only")
	}
	// Only μFork pays relocation costs; only it gets the static heap.
	if u.CapScanPage == 0 || p.CapScanPage != 0 {
		t.Error("tag-scan cost belongs to μFork")
	}
	if u.StaticHeapPages == 0 || p.StaticHeapPages != 0 {
		t.Error("static heap belongs to the unikernel")
	}
	if !p.DemandPagedHeap || u.DemandPagedHeap {
		t.Error("demand paging belongs to the monolithic baseline")
	}
}

func TestKindStrings(t *testing.T) {
	if model.KindUFork.String() != "uFork" ||
		model.KindPosix.String() != "CheriBSD" ||
		model.KindVMClone.String() != "Nephele" {
		t.Error("kind names wrong")
	}
}
