package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/causal"
	"ufork/internal/obs/memmap"
	"ufork/internal/sim"
)

// Exposition bundles the data sources /metrics renders: an obs registry
// snapshot, bucket-level histogram detail, per-μprocess accounting from
// the live kernel, and flight-recorder meta counters. Rendering is pure
// and fully sorted, so a fixed Exposition produces byte-identical output
// (the golden test pins it).
type Exposition struct {
	Snap  obs.Snapshot
	Hists map[string]*obs.Histogram
	Procs []kernel.ProcStat

	// Memmap, when non-nil, adds the ufork_memmap_* families from a
	// memory-provenance plane snapshot. Nil renders nothing, keeping
	// expositions from plane-less runs byte-identical to before.
	Memmap *memmap.Snapshot

	// Locks, when non-empty, adds the ufork_lock_* families from an armed
	// lockstat table. Sched, when non-nil, adds the ufork_sched_*
	// scheduler-telemetry families. Both render in seconds (Prometheus
	// convention) rather than the registry histograms' virtual-ns suffix,
	// since dashboards compare them against wall-clock SLOs. Nil/empty
	// renders nothing.
	Locks []*sim.LockMeter
	Sched *sim.SchedStats

	// Traces, when non-nil, adds the ufork_trace_* families from the
	// causal trace-context plane. Nil renders nothing.
	Traces *causal.Snapshot

	FlightSeq     uint64
	FlightDropped uint64
}

// WriteMetrics renders the exposition in Prometheus text format
// (version 0.0.4): HELP/TYPE headers per family, `_total`-suffixed
// counters, and cumulative `_bucket{le=...}`/`_sum`/`_count` histogram
// series. All durations are virtual nanoseconds (the sim clock), flagged
// with an `_ns` suffix rather than Prometheus's wall-clock seconds
// convention.
func WriteMetrics(w io.Writer, e Exposition) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(e.Snap.Counters))
	for n := range e.Snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := "ufork_" + sanitize(n) + "_total"
		fmt.Fprintf(bw, "# HELP %s kernel counter %s\n# TYPE %s counter\n%s %d\n",
			m, n, m, m, e.Snap.Counters[n])
	}

	names = names[:0]
	for n := range e.Snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := "ufork_" + sanitize(n)
		fmt.Fprintf(bw, "# HELP %s kernel gauge %s\n# TYPE %s gauge\n%s %d\n",
			m, n, m, m, e.Snap.Gauges[n])
	}

	names = names[:0]
	for n := range e.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := e.Hists[n]
		m := "ufork_" + sanitize(n) + "_ns"
		fmt.Fprintf(bw, "# HELP %s virtual-time histogram %s (ns)\n# TYPE %s histogram\n", m, n, m)
		bounds, cum := h.Buckets()
		for i, b := range bounds {
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", m, b, cum[i])
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m, cum[len(cum)-1])
		fmt.Fprintf(bw, "%s_sum %d\n", m, h.Sum())
		fmt.Fprintf(bw, "%s_count %d\n", m, h.Count())
	}

	writeProcMetrics(bw, e.Procs)
	writeMemmapMetrics(bw, e.Memmap)
	writeLockMetrics(bw, e.Locks)
	writeSchedMetrics(bw, e.Sched)
	writeTraceMetrics(bw, e.Traces)

	fmt.Fprintf(bw, "# HELP ufork_flight_events_total flight-recorder events emitted\n"+
		"# TYPE ufork_flight_events_total counter\nufork_flight_events_total %d\n", e.FlightSeq)
	fmt.Fprintf(bw, "# HELP ufork_flight_dropped_total flight-recorder events evicted by ring wrap\n"+
		"# TYPE ufork_flight_dropped_total counter\nufork_flight_dropped_total %d\n", e.FlightDropped)
	return bw.Flush()
}

// writeProcMetrics renders the per-μprocess accounting families. Each
// family carries pid/proc labels; fault counters add the copy-mode
// outcome so a CoPA storm is one PromQL selector away.
func writeProcMetrics(bw *bufio.Writer, procs []kernel.ProcStat) {
	if len(procs) == 0 {
		return
	}
	family := func(name, typ, help string, emit func(kernel.ProcStat)) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, p := range procs {
			emit(p)
		}
	}
	family("ufork_proc_syscalls_total", "counter", "syscalls completed per process", func(p kernel.ProcStat) {
		fmt.Fprintf(bw, "ufork_proc_syscalls_total{pid=\"%d\",proc=%q} %d\n", p.PID, p.Name, p.SyscallsTotal)
	})
	family("ufork_proc_faults_total", "counter", "page faults per process by copy-mode outcome", func(p kernel.ProcStat) {
		for _, o := range [...]struct {
			outcome string
			v       uint64
		}{{"cow", p.FaultCoW}, {"coa", p.FaultCoA}, {"copa", p.FaultCoPA}, {"mapped", p.FaultMapped}} {
			fmt.Fprintf(bw, "ufork_proc_faults_total{pid=\"%d\",proc=%q,outcome=%q} %d\n",
				p.PID, p.Name, o.outcome, o.v)
		}
	})
	family("ufork_proc_frames_owned", "gauge", "physical frames charged to the process", func(p kernel.ProcStat) {
		fmt.Fprintf(bw, "ufork_proc_frames_owned{pid=\"%d\",proc=%q} %d\n", p.PID, p.Name, p.FramesOwned)
	})
	family("ufork_proc_frames_peak", "gauge", "peak physical frames charged to the process", func(p kernel.ProcStat) {
		fmt.Fprintf(bw, "ufork_proc_frames_peak{pid=\"%d\",proc=%q} %d\n", p.PID, p.Name, p.FramesPeak)
	})
	family("ufork_proc_forks_total", "counter", "fork calls performed by the process", func(p kernel.ProcStat) {
		fmt.Fprintf(bw, "ufork_proc_forks_total{pid=\"%d\",proc=%q} %d\n", p.PID, p.Name, p.Forks)
	})
	family("ufork_proc_fork_bytes_copied_total", "counter", "bytes physically copied by the process's forks", func(p kernel.ProcStat) {
		fmt.Fprintf(bw, "ufork_proc_fork_bytes_copied_total{pid=\"%d\",proc=%q} %d\n", p.PID, p.Name, p.ForkBytesCopied)
	})
	family("ufork_proc_caps_relocated_total", "counter", "capabilities relocated for the process (fork eager + fault lazy)", func(p kernel.ProcStat) {
		fmt.Fprintf(bw, "ufork_proc_caps_relocated_total{pid=\"%d\",proc=%q} %d\n",
			p.PID, p.Name, p.ForkCapsRelocated+p.FaultCapsRelocated)
	})
	family("ufork_proc_peak_brk_pages", "gauge", "peak heap watermark in pages", func(p kernel.ProcStat) {
		fmt.Fprintf(bw, "ufork_proc_peak_brk_pages{pid=\"%d\",proc=%q} %d\n", p.PID, p.Name, p.PeakBrkPages)
	})
}

// writeMemmapMetrics renders the memory-provenance families: live-frame
// population by materialization origin, exclusive-ownership transfers,
// and the per-μprocess RSS/PSS/USS decomposition of the fork tree.
func writeMemmapMetrics(bw *bufio.Writer, m *memmap.Snapshot) {
	if m == nil {
		return
	}
	fmt.Fprintf(bw, "# HELP ufork_memmap_frames_live physical frames currently tracked by the provenance plane\n"+
		"# TYPE ufork_memmap_frames_live gauge\nufork_memmap_frames_live %d\n", m.LiveFrames)
	origins := make([]string, 0, len(m.LiveByOrigin))
	for o := range m.LiveByOrigin {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	fmt.Fprintf(bw, "# HELP ufork_memmap_frames_by_origin live frames by the copy path that materialized them\n"+
		"# TYPE ufork_memmap_frames_by_origin gauge\n")
	for _, o := range origins {
		fmt.Fprintf(bw, "ufork_memmap_frames_by_origin{origin=%q} %d\n", o, m.LiveByOrigin[o])
	}
	origins = origins[:0]
	for o := range m.AllocsByOrigin {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	fmt.Fprintf(bw, "# HELP ufork_memmap_allocs_by_origin_total frame allocations by materializing copy path\n"+
		"# TYPE ufork_memmap_allocs_by_origin_total counter\n")
	for _, o := range origins {
		fmt.Fprintf(bw, "ufork_memmap_allocs_by_origin_total{origin=%q} %d\n", o, m.AllocsByOrigin[o])
	}
	fmt.Fprintf(bw, "# HELP ufork_memmap_owner_changes_total CoW/CoA/CoPA breaks that transferred exclusive frame ownership\n"+
		"# TYPE ufork_memmap_owner_changes_total counter\nufork_memmap_owner_changes_total %d\n", m.OwnerChanges)
	if len(m.Procs) == 0 {
		return
	}
	family := func(name, help string, value func(memmap.ProcNode) uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, p := range m.Procs {
			fmt.Fprintf(bw, "%s{pid=\"%d\",proc=%q} %d\n", name, p.PID, p.Name, value(p))
		}
	}
	family("ufork_memmap_proc_rss_bytes", "resident set: bytes of mapped frames",
		func(p memmap.ProcNode) uint64 { return p.RSSBytes })
	family("ufork_memmap_proc_pss_bytes", "proportional set: resident bytes with shared frames split across mappers",
		func(p memmap.ProcNode) uint64 { return p.PSSBytes })
	family("ufork_memmap_proc_uss_bytes", "unique set: bytes only this process maps",
		func(p memmap.ProcNode) uint64 { return p.USSBytes })
	family("ufork_memmap_proc_shared_pages", "pages shared with at least one other mapper",
		func(p memmap.ProcNode) uint64 { return uint64(p.SharedPages) })
}

// secs renders a virtual-ns quantity as Prometheus seconds. FormatFloat
// with 'g' keeps the 1-2-5 bucket ladder exact and strictly increasing
// ("1e-09", "2e-09", ..., "1000"), which the lint's emission-order check
// relies on.
func secs(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// writeHist renders one histogram's bucket/sum/count series under name.
// labels is the rendered label set without braces ("" for none); val maps
// a raw bound or sum onto its exposition string (seconds or plain count).
func writeHist(bw *bufio.Writer, name, labels string, h *obs.Histogram, val func(uint64) string) {
	brace := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	bounds, cum := h.Buckets()
	for i, b := range bounds {
		fmt.Fprintf(bw, "%s_bucket%s %d\n", name, brace(`le="`+val(b)+`"`), cum[i])
	}
	fmt.Fprintf(bw, "%s_bucket%s %d\n", name, brace(`le="+Inf"`), cum[len(cum)-1])
	fmt.Fprintf(bw, "%s_sum%s %s\n", name, brace(""), val(h.Sum()))
	fmt.Fprintf(bw, "%s_count%s %d\n", name, brace(""), h.Count())
}

// writeLockMetrics renders the lockstat families: per-lock acquisition
// and contention counters, the waiters high-water mark, and wait/hold
// histograms in seconds.
func writeLockMetrics(bw *bufio.Writer, locks []*sim.LockMeter) {
	if len(locks) == 0 {
		return
	}
	family := func(name, typ, help string, emit func(m *sim.LockMeter)) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, m := range locks {
			emit(m)
		}
	}
	label := func(m *sim.LockMeter) string { return fmt.Sprintf("lock=%q", m.Name()) }
	family("ufork_lock_acquisitions_total", "counter", "lock acquisitions by named lock", func(m *sim.LockMeter) {
		fmt.Fprintf(bw, "ufork_lock_acquisitions_total{%s} %d\n", label(m), m.Acquisitions())
	})
	family("ufork_lock_contended_total", "counter", "lock acquisitions that had to wait", func(m *sim.LockMeter) {
		fmt.Fprintf(bw, "ufork_lock_contended_total{%s} %d\n", label(m), m.ContendedCount())
	})
	family("ufork_lock_waiters_high_water", "gauge", "most waiters ever queued on the lock at once", func(m *sim.LockMeter) {
		fmt.Fprintf(bw, "ufork_lock_waiters_high_water{%s} %d\n", label(m), m.WaitersHighWater())
	})
	family("ufork_lock_wait_seconds", "histogram", "virtual time lost waiting for the lock", func(m *sim.LockMeter) {
		writeHist(bw, "ufork_lock_wait_seconds", label(m), m.WaitHist(), secs)
	})
	family("ufork_lock_hold_seconds", "histogram", "virtual time the lock was held per critical section", func(m *sim.LockMeter) {
		writeHist(bw, "ufork_lock_hold_seconds", label(m), m.HoldHist(), secs)
	})
}

// writeSchedMetrics renders the scheduler-telemetry families: run-queue
// depth, dispatch latency, and per-core busy time/utilization.
func writeSchedMetrics(bw *bufio.Writer, s *sim.SchedStats) {
	if s == nil {
		return
	}
	snap := s.Snapshot()
	fmt.Fprintf(bw, "# HELP ufork_sched_runq_depth runnable tasks left in the queue at each dispatch\n"+
		"# TYPE ufork_sched_runq_depth histogram\n")
	writeHist(bw, "ufork_sched_runq_depth", "", s.RunqDepth, func(v uint64) string {
		return strconv.FormatUint(v, 10)
	})
	fmt.Fprintf(bw, "# HELP ufork_sched_dispatch_wait_seconds virtual time runnable tasks queued for a core\n"+
		"# TYPE ufork_sched_dispatch_wait_seconds histogram\n")
	writeHist(bw, "ufork_sched_dispatch_wait_seconds", "", s.DispatchWait, secs)
	fmt.Fprintf(bw, "# HELP ufork_sched_core_busy_seconds_total virtual time each core spent executing\n"+
		"# TYPE ufork_sched_core_busy_seconds_total counter\n")
	for _, c := range snap.PerCore {
		fmt.Fprintf(bw, "ufork_sched_core_busy_seconds_total{core=\"%d\"} %s\n", c.Core, secs(c.BusyNS))
	}
	fmt.Fprintf(bw, "# HELP ufork_sched_core_utilization busy fraction of each core over the simulated horizon\n"+
		"# TYPE ufork_sched_core_utilization gauge\n")
	for _, c := range snap.PerCore {
		fmt.Fprintf(bw, "ufork_sched_core_utilization{core=\"%d\"} %s\n",
			c.Core, strconv.FormatFloat(c.Utilization, 'g', -1, 64))
	}
	fmt.Fprintf(bw, "# HELP ufork_sched_horizon_seconds latest core-slot end observed (utilization denominator)\n"+
		"# TYPE ufork_sched_horizon_seconds gauge\nufork_sched_horizon_seconds %s\n", secs(snap.HorizonNS))
}

// writeTraceMetrics renders the causal-tracing families: trace lifecycle
// counters, causal edges by kind, and the exemplar reservoir population.
func writeTraceMetrics(bw *bufio.Writer, t *causal.Snapshot) {
	if t == nil {
		return
	}
	fmt.Fprintf(bw, "# HELP ufork_trace_started_total causal traces begun at request/op origins\n"+
		"# TYPE ufork_trace_started_total counter\nufork_trace_started_total %d\n", t.Started)
	fmt.Fprintf(bw, "# HELP ufork_trace_finished_total causal traces whose root span closed\n"+
		"# TYPE ufork_trace_finished_total counter\nufork_trace_finished_total %d\n", t.Finished)
	kinds := make([]string, 0, len(t.Edges))
	for k := range t.Edges {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(bw, "# HELP ufork_trace_edges_total causal handoffs recorded, by edge kind\n"+
		"# TYPE ufork_trace_edges_total counter\n")
	for _, k := range kinds {
		fmt.Fprintf(bw, "ufork_trace_edges_total{kind=%q} %d\n", k, t.Edges[k])
	}
	fmt.Fprintf(bw, "# HELP ufork_trace_exemplars slow-trace exemplars retained across group reservoirs\n"+
		"# TYPE ufork_trace_exemplars gauge\nufork_trace_exemplars %d\n", t.Exemplars)
}

// sanitize maps an obs metric name (dot/dash separated) onto the
// Prometheus name charset [a-zA-Z0-9_].
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
