package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/obs"
	"ufork/internal/obs/flight"
	"ufork/internal/sim"
)

// TestHandlerErrorPaths is the table-driven error-path sweep: every
// endpoint must answer bad input with a clean 4xx and a diagnostic body,
// never a 200 that reads like a healthy-but-idle system, and never a 5xx.
func TestHandlerErrorPaths(t *testing.T) {
	h := testServer().Handler()
	cases := []struct {
		path     string
		status   int
		bodyFrag string
	}{
		{"/flight?n=bogus", http.StatusBadRequest, "bad n"},
		{"/memmap?frames=bogus", http.StatusBadRequest, "bad frames"},
		{"/memmap?frames=-3", http.StatusBadRequest, "bad frames"},
		{"/memmap?frames=1e3", http.StatusBadRequest, "bad frames"},
		{"/nonsense", http.StatusNotFound, "not found"},
		{"/locks/extra", http.StatusNotFound, "not found"},
		{"/traces", http.StatusConflict, "not armed"},
		{"/profile", http.StatusConflict, "not armed"},
		{"/healthz", http.StatusOK, `"planes"`},
		{"/metrics", http.StatusOK, "ufork_"},
		{"/locks", http.StatusOK, "["},
		{"/sched", http.StatusOK, "cores"},
		{"/procs", http.StatusOK, "["},
	}
	for _, c := range cases {
		res, body := get(t, h, c.path)
		if res.StatusCode != c.status {
			t.Errorf("GET %s = %d, want %d (body %q)", c.path, res.StatusCode, c.status, body)
		}
		if !strings.Contains(strings.ToLower(body), c.bodyFrag) {
			t.Errorf("GET %s body %q missing %q", c.path, body, c.bodyFrag)
		}
	}
}

// TestFlightEndpointNotArmed: a recorder that was never enabled and holds
// no events is a 409, not an empty success.
func TestFlightEndpointNotArmed(t *testing.T) {
	s := New(obs.New(), flight.New(2, 64))
	res, body := get(t, s.Handler(), "/flight")
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("unarmed /flight status = %d, want 409", res.StatusCode)
	}
	if !strings.Contains(body, "not armed") {
		t.Fatalf("unarmed /flight body = %q", body)
	}
	// Once armed (even if later disabled), dumps work again.
	s.fr.Enable()
	s.fr.Emit(1, 1, flight.KindForkStart, 0, 0, 0)
	s.fr.Disable()
	if res, _ := get(t, s.Handler(), "/flight"); res.StatusCode != http.StatusOK {
		t.Fatalf("armed-then-disabled /flight status = %d, want 200", res.StatusCode)
	}
}

// TestTracesEndpointErrorPaths is the /traces table: an armed plane must
// answer bad query input with a clean 400 and serve both formats on good
// input — the unarmed 409 is covered by TestHandlerErrorPaths and
// TestTracesEndpointNotArmed.
func TestTracesEndpointErrorPaths(t *testing.T) {
	s := testServer()
	s.causal.Enable()
	cases := []struct {
		path     string
		status   int
		bodyFrag string
	}{
		{"/traces?k=bogus", http.StatusBadRequest, "bad k"},
		{"/traces?k=-1", http.StatusBadRequest, "bad k"},
		{"/traces?k=2.5", http.StatusBadRequest, "bad k"},
		{"/traces?format=xml", http.StatusBadRequest, "bad format"},
		{"/traces?format=text", http.StatusBadRequest, "bad format"},
		{"/traces", http.StatusOK, `"started"`},
		{"/traces?k=2", http.StatusOK, `"exemplars"`},
		{"/traces?format=json", http.StatusOK, `"groups"`},
		{"/traces?format=chrome", http.StatusOK, "traceEvents"},
	}
	for _, c := range cases {
		res, body := get(t, s.Handler(), c.path)
		if res.StatusCode != c.status {
			t.Errorf("GET %s = %d, want %d (body %q)", c.path, res.StatusCode, c.status, body)
		}
		if !strings.Contains(body, c.bodyFrag) {
			t.Errorf("GET %s body %q missing %q", c.path, body, c.bodyFrag)
		}
	}
}

// TestTracesEndpointNotArmed mirrors the flight recorder's contract: a
// plane that never traced is a 409, but once it has finished a trace the
// exemplars stay servable even after the plane is disabled.
func TestTracesEndpointNotArmed(t *testing.T) {
	s := testServer()
	res, body := get(t, s.Handler(), "/traces")
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("unarmed /traces status = %d, want 409", res.StatusCode)
	}
	if !strings.Contains(body, "not armed") {
		t.Fatalf("unarmed /traces body = %q", body)
	}
	s.causal.Enable()
	var delays [sim.NumDelayKinds]sim.Time
	sp := s.causal.Begin("g", "op", 1, "p", 0, delays)
	delays[sim.DelayRun] = 100
	sp.Checkpoint(100, delays)
	s.causal.Close(sp, 100)
	s.causal.Disable()
	res, body = get(t, s.Handler(), "/traces")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("armed-then-disabled /traces status = %d, want 200", res.StatusCode)
	}
	if !strings.Contains(body, `"op": "op"`) {
		t.Fatalf("retained exemplar missing from /traces body:\n%s", body)
	}
}

// TestLocksSchedEndpointsEmpty: untracked servers serve stable empty
// documents, not nulls.
func TestLocksSchedEndpointsEmpty(t *testing.T) {
	h := testServer().Handler()
	res, body := get(t, h, "/locks")
	if res.StatusCode != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("untracked /locks = %d %q, want 200 []", res.StatusCode, body)
	}
	var snap sim.SchedSnapshot
	_, body = get(t, h, "/sched")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad /sched JSON: %v\n%s", err, body)
	}
	if snap.Cores != 0 || snap.PerCore == nil || len(snap.PerCore) != 0 {
		t.Fatalf("untracked /sched = %+v, want zero cores and empty per_core", snap)
	}
}

// TestLocksSchedEndpointsLive boots a real multicore kernel under the
// server, runs a fork-storm, and checks the whole contention plane end to
// end: /locks carries the named BKL meter, /sched carries per-core
// utilization, and /metrics grows lint-clean ufork_lock_*/ufork_sched_*
// families.
func TestLocksSchedEndpointsLive(t *testing.T) {
	s := testServer()
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFault,
		Frames:    1 << 14,
	})
	s.Track(k)
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < 2; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				for j := 0; j < 100; j++ {
					k.Getpid(c)
					c.Compute(200)
				}
			}); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 2; i++ {
			if _, _, err := k.Wait(p); err != nil {
				t.Error(err)
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()

	var locks []sim.LockStat
	_, body := get(t, s.Handler(), "/locks")
	if err := json.Unmarshal([]byte(body), &locks); err != nil {
		t.Fatalf("bad /locks JSON: %v\n%s", err, body)
	}
	byName := map[string]sim.LockStat{}
	for _, l := range locks {
		byName[l.Name] = l
	}
	bkl, ok := byName["bkl"]
	if !ok {
		t.Fatalf("/locks missing the bkl meter: %s", body)
	}
	if bkl.Acquisitions == 0 || bkl.Contended == 0 || bkl.Site != "kernel.enter" {
		t.Fatalf("bkl lockstat = %+v, want contended acquisitions at kernel.enter", bkl)
	}
	for _, name := range []string{"proctable", "fdtable", "tmem"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("/locks missing shadow meter %q", name)
		}
	}

	var sched sim.SchedSnapshot
	_, body = get(t, s.Handler(), "/sched")
	if err := json.Unmarshal([]byte(body), &sched); err != nil {
		t.Fatalf("bad /sched JSON: %v\n%s", err, body)
	}
	if sched.Cores != 2 || len(sched.PerCore) != 2 || sched.HorizonNS == 0 {
		t.Fatalf("/sched = %+v, want two busy cores", sched)
	}
	if sched.DispatchWait.Count == 0 {
		t.Fatalf("/sched dispatch-wait has no samples: %+v", sched)
	}

	_, body = get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		`ufork_lock_acquisitions_total{lock="bkl"}`,
		`ufork_lock_contended_total{lock="bkl"}`,
		`ufork_lock_waiters_high_water{lock="bkl"}`,
		`ufork_lock_wait_seconds_bucket{lock="bkl",le="`,
		`ufork_lock_wait_seconds_count{lock="bkl"}`,
		`ufork_lock_hold_seconds_sum{lock="bkl"}`,
		"ufork_sched_runq_depth_bucket{le=\"1\"}",
		"ufork_sched_dispatch_wait_seconds_count",
		`ufork_sched_core_busy_seconds_total{core="0"}`,
		`ufork_sched_core_utilization{core="1"}`,
		"ufork_sched_horizon_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if errs := Lint(strings.NewReader(body)); len(errs) != 0 {
		t.Fatalf("/metrics with lock/sched families fails lint: %v", errs)
	}
}
