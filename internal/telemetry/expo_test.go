package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/memmap"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedExposition builds a small, fully-determined exposition: two
// counters, a gauge, one histogram with hand-picked bounds, two procs,
// and flight meta counters. Everything WriteMetrics can render appears.
func fixedExposition() Exposition {
	h := obs.NewHistogram([]uint64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(500)
	h.Observe(50000) // overflow bucket
	return Exposition{
		Snap: obs.Snapshot{
			Counters: map[string]uint64{
				"syscall.fork":    12,
				"fault.total":     90,
				"weird-name.x/y!": 1, // exercises sanitize()
			},
			Gauges: map[string]int64{"frames.allocated": 640},
		},
		Hists: map[string]*obs.Histogram{"fork.latency": h},
		Procs: []kernel.ProcStat{
			{PID: 1, PPID: 0, Name: "init", SyscallsTotal: 40, Faults: 6,
				FaultCoW: 1, FaultCoA: 2, FaultCoPA: 3, FramesOwned: 10,
				FramesPeak: 12, Forks: 2, ForkBytesCopied: 8192,
				ForkCapsRelocated: 5, FaultCapsRelocated: 2, PeakBrkPages: 4},
			{PID: 2, PPID: 1, Name: `child "q"`, SyscallsTotal: 7,
				FaultMapped: 4, FramesOwned: 3, FramesPeak: 3, PeakBrkPages: 1},
		},
		FlightSeq:     777,
		FlightDropped: 13,
	}
}

// TestGoldenExposition pins the exposition byte-for-byte: the scrape
// format is an external contract, so a diff here means dashboards break.
func TestGoldenExposition(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMetrics(&b, fixedExposition()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_metrics.txt")
	if *update {
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("exposition differs from %s\ngot:\n%s\nwant:\n%s", path, b.Bytes(), want)
	}
}

// TestExpositionLintClean feeds the rendered exposition through the lint
// pass CI uses: the producer and the validator must agree.
func TestExpositionLintClean(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMetrics(&b, fixedExposition()); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(&b); len(errs) != 0 {
		t.Fatalf("our own exposition fails lint: %v", errs)
	}
}

func TestExpositionEscapesLabelValues(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMetrics(&b, fixedExposition()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `proc="child \"q\""`) {
		t.Fatalf("proc name quotes not escaped:\n%s", b.String())
	}
}

func TestExpositionHistogramCumulative(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMetrics(&b, fixedExposition()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ufork_fork_latency_ns_bucket{le="100"} 1`,
		`ufork_fork_latency_ns_bucket{le="1000"} 3`,
		`ufork_fork_latency_ns_bucket{le="10000"} 3`,
		`ufork_fork_latency_ns_bucket{le="+Inf"} 4`,
		`ufork_fork_latency_ns_sum 51050`,
		`ufork_fork_latency_ns_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestMemmapExpositionLintClean: the ufork_memmap_* families must render
// lint-clean alongside everything else, and a nil Memmap must leave the
// exposition byte-identical to the plane-less rendering (the golden file
// pins that case separately).
func TestMemmapExpositionLintClean(t *testing.T) {
	e := fixedExposition()
	e.Memmap = &memmap.Snapshot{
		LiveFrames:     3,
		LiveByOrigin:   map[string]int{"image": 2, "cow": 1},
		AllocsByOrigin: map[string]uint64{"image": 2, "cow": 4},
		OwnerChanges:   4,
		Procs: []memmap.ProcNode{
			{PID: 1, Name: "init", RSSBytes: 8192, PSSBytes: 6144, USSBytes: 4096, SharedPages: 1, Children: []int32{2}},
			{PID: 2, PPID: 1, Name: `kid "z"`, Gen: 1, RSSBytes: 4096, PSSBytes: 2048, SharedPages: 1},
		},
	}
	var b bytes.Buffer
	if err := WriteMetrics(&b, e); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ufork_memmap_frames_live 3",
		`ufork_memmap_frames_by_origin{origin="cow"} 1`,
		`ufork_memmap_allocs_by_origin_total{origin="image"} 2`,
		"ufork_memmap_owner_changes_total 4",
		`ufork_memmap_proc_pss_bytes{pid="2",proc="kid \"z\""} 2048`,
		`ufork_memmap_proc_shared_pages{pid="1",proc="init"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if errs := Lint(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("memmap exposition fails lint: %v", errs)
	}
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"fork.latency":  "fork_latency",
		"a-b/c d":       "a_b_c_d",
		"already_clean": "already_clean",
		"Caps123":       "Caps123",
	} {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
