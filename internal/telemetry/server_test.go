package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/memmap"
)

// testServer builds a Server over private obs + flight state with a few
// instruments populated, so endpoint tests never touch process globals.
func testServer() *Server {
	o := obs.New()
	o.Reg.Counter("syscall.fork").Add(4)
	o.Reg.Gauge("frames.allocated").Set(128)
	h := o.Reg.Histogram("fork.phase.reserve")
	h.Observe(120)
	h.Observe(340)
	fr := flight.New(2, 64)
	fr.Enable()
	fr.Emit(100, 1, flight.KindForkStart, 0, 0, 0)
	fr.Emit(900, 1, flight.KindForkDone, 2, 8, 3)
	return New(o, fr)
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := testServer().Handler()
	res, body := get(t, h, "/metrics")
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"ufork_syscall_fork_total 4",
		"ufork_frames_allocated 128",
		"ufork_fork_phase_reserve_ns_count 2",
		"ufork_flight_events_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	if errs := Lint(strings.NewReader(body)); len(errs) != 0 {
		t.Fatalf("live /metrics fails lint: %v", errs)
	}
}

func TestProcsEndpointEmpty(t *testing.T) {
	_, body := get(t, testServer().Handler(), "/procs")
	var procs []kernel.ProcStat
	if err := json.Unmarshal([]byte(body), &procs); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if procs == nil || len(procs) != 0 {
		t.Fatalf("untracked /procs = %v, want empty array (not null)", procs)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("procs body is not a JSON array:\n%s", body)
	}
}

func TestProcsEndpointTracked(t *testing.T) {
	s := testServer()
	s.Track(&kernel.Kernel{}) // quiescent kernel: no procs, but tracked
	_, body := get(t, s.Handler(), "/procs")
	var procs []kernel.ProcStat
	if err := json.Unmarshal([]byte(body), &procs); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(procs) != 0 {
		t.Fatalf("empty kernel exposes %d procs", len(procs))
	}
}

func TestFlightEndpointText(t *testing.T) {
	res, body := get(t, testServer().Handler(), "/flight?n=1")
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(body, "flight recorder: last 1 of 2 events") {
		t.Fatalf("flight text wrong:\n%s", body)
	}
	if strings.Contains(body, "fork-start") || !strings.Contains(body, "fork-done") {
		t.Fatalf("?n=1 must keep only the newest event:\n%s", body)
	}
}

func TestFlightEndpointChrome(t *testing.T) {
	res, body := get(t, testServer().Handler(), "/flight?format=chrome")
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, body)
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(trace.TraceEvents))
	}
}

func TestFlightEndpointBadN(t *testing.T) {
	res, _ := get(t, testServer().Handler(), "/flight?n=bogus")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", res.StatusCode)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	h := testServer().Handler()
	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index broken: %d\n%s", res.StatusCode, body)
	}
	res, _ = get(t, h, "/nonsense")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", res.StatusCode)
	}
}

// TestMemmapEndpoint populates the server's provenance plane and checks
// the /memmap JSON: fork-tree nodes with RSS/PSS/USS, child links, origin
// breakdown, and the bounded frame-lineage sample.
func TestMemmapEndpoint(t *testing.T) {
	s := testServer()
	s.pl.OnSpawn(1, 0, "init", 0)
	s.pl.OnSpawn(2, 1, "child", 1)
	s.pl.OnAlloc(5, 1, 0, memmap.OriginImage)
	s.pl.OnMap(1, 5) // shared by both after fork
	s.pl.OnMap(2, 5)
	s.pl.OnAlloc(6, 2, 1, memmap.OriginCoW)
	s.pl.OnCopy(6, 5)
	s.pl.OnMap(2, 6)

	res, body := get(t, s.Handler(), "/memmap")
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap memmap.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap.LiveFrames != 2 {
		t.Fatalf("live_frames = %d, want 2", snap.LiveFrames)
	}
	if snap.LiveByOrigin["image"] != 1 || snap.LiveByOrigin["cow"] != 1 {
		t.Fatalf("live_by_origin = %v", snap.LiveByOrigin)
	}
	if len(snap.Procs) != 2 || snap.Procs[0].PID != 1 || snap.Procs[1].PID != 2 {
		t.Fatalf("procs = %+v", snap.Procs)
	}
	pg := uint64(4096)
	if root := snap.Procs[0]; root.RSSBytes != pg || root.PSSBytes != pg/2 || root.USSBytes != 0 {
		t.Fatalf("root rss/pss/uss = %d/%d/%d", root.RSSBytes, root.PSSBytes, root.USSBytes)
	}
	if child := snap.Procs[1]; child.RSSBytes != 2*pg || child.PSSBytes != pg+pg/2 || child.USSBytes != pg {
		t.Fatalf("child rss/pss/uss = %d/%d/%d", child.RSSBytes, child.PSSBytes, child.USSBytes)
	}
	if len(snap.Procs[0].Children) != 1 || snap.Procs[0].Children[0] != 2 {
		t.Fatalf("root children = %v", snap.Procs[0].Children)
	}
	found := false
	for _, f := range snap.Frames {
		if f.PFN == 6 && f.Origin == "cow" && f.Parent == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("frame lineage missing pfn 6 ← 5 (cow): %+v", snap.Frames)
	}

	// ?frames=0 omits the lineage sample; a bad value is a 400.
	_, body = get(t, s.Handler(), "/memmap?frames=0")
	snap = memmap.Snapshot{}
	if err := json.Unmarshal([]byte(body), &snap); err != nil || len(snap.Frames) != 0 {
		t.Fatalf("?frames=0 still samples frames: %v %+v", err, snap.Frames)
	}
	if res, _ := get(t, s.Handler(), "/memmap?frames=bogus"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad frames param status = %d, want 400", res.StatusCode)
	}
}

// TestMemmapEndpointEmpty: an idle plane serves a well-formed, non-null
// document.
func TestMemmapEndpointEmpty(t *testing.T) {
	_, body := get(t, testServer().Handler(), "/memmap")
	var snap struct {
		Procs []memmap.ProcNode `json:"procs"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap.Procs == nil || !strings.Contains(body, `"procs": []`) {
		t.Fatalf("idle /memmap procs must be an empty array, not null:\n%s", body)
	}
}

// TestMetricsIncludesMemmap: a populated plane surfaces through /metrics
// as the ufork_memmap_* families, and the result still lints clean.
func TestMetricsIncludesMemmap(t *testing.T) {
	s := testServer()
	s.pl.OnSpawn(1, 0, "init", 0)
	s.pl.OnAlloc(9, 1, 0, memmap.OriginEager)
	s.pl.OnMap(1, 9)
	_, body := get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		"ufork_memmap_frames_live 1",
		`ufork_memmap_frames_by_origin{origin="eager"} 1`,
		`ufork_memmap_proc_rss_bytes{pid="1",proc="init"} 4096`,
		`ufork_memmap_proc_uss_bytes{pid="1",proc="init"} 4096`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	if errs := Lint(strings.NewReader(body)); len(errs) != 0 {
		t.Fatalf("/metrics with memmap families fails lint: %v", errs)
	}
}

// TestCloseReleasesAddr: binding an address twice must fail with an error
// returned to the caller (not a background panic), and Close must release
// the address for rebinding.
func TestCloseReleasesAddr(t *testing.T) {
	defer obs.Disable()
	defer flight.Default.Disable()
	defer func() { kernel.TrackNew = nil }()
	s1, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(s1.Addr); err == nil {
		t.Fatalf("second bind of %s succeeded, want address-in-use error", s1.Addr)
	} else if !strings.Contains(err.Error(), s1.Addr) {
		t.Fatalf("bind error does not name the address: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Start(s1.Addr)
	if err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
	defer s2.Close()
	resp, err := http.Get("http://" + s2.Addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape after rebind: %v", err)
	}
	resp.Body.Close()
}

// TestStartServesLive binds a real listener on :0 and scrapes it — the
// exact path the -serve flag takes, minus the simulation.
func TestStartServesLive(t *testing.T) {
	defer obs.Disable()
	defer flight.Default.Disable()
	defer func() { kernel.TrackNew = nil }()
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !obs.On() || !flight.Default.On() {
		t.Fatal("Start must arm obs and the flight recorder")
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if errs := Lint(resp.Body); len(errs) != 0 {
		t.Fatalf("live scrape fails lint: %v", errs)
	}
}
