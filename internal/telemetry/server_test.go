package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/flight"
)

// testServer builds a Server over private obs + flight state with a few
// instruments populated, so endpoint tests never touch process globals.
func testServer() *Server {
	o := obs.New()
	o.Reg.Counter("syscall.fork").Add(4)
	o.Reg.Gauge("frames.allocated").Set(128)
	h := o.Reg.Histogram("fork.phase.reserve")
	h.Observe(120)
	h.Observe(340)
	fr := flight.New(2, 64)
	fr.Enable()
	fr.Emit(100, 1, flight.KindForkStart, 0, 0, 0)
	fr.Emit(900, 1, flight.KindForkDone, 2, 8, 3)
	return New(o, fr)
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := testServer().Handler()
	res, body := get(t, h, "/metrics")
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"ufork_syscall_fork_total 4",
		"ufork_frames_allocated 128",
		"ufork_fork_phase_reserve_ns_count 2",
		"ufork_flight_events_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	if errs := Lint(strings.NewReader(body)); len(errs) != 0 {
		t.Fatalf("live /metrics fails lint: %v", errs)
	}
}

func TestProcsEndpointEmpty(t *testing.T) {
	_, body := get(t, testServer().Handler(), "/procs")
	var procs []kernel.ProcStat
	if err := json.Unmarshal([]byte(body), &procs); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if procs == nil || len(procs) != 0 {
		t.Fatalf("untracked /procs = %v, want empty array (not null)", procs)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("procs body is not a JSON array:\n%s", body)
	}
}

func TestProcsEndpointTracked(t *testing.T) {
	s := testServer()
	s.Track(&kernel.Kernel{}) // quiescent kernel: no procs, but tracked
	_, body := get(t, s.Handler(), "/procs")
	var procs []kernel.ProcStat
	if err := json.Unmarshal([]byte(body), &procs); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(procs) != 0 {
		t.Fatalf("empty kernel exposes %d procs", len(procs))
	}
}

func TestFlightEndpointText(t *testing.T) {
	res, body := get(t, testServer().Handler(), "/flight?n=1")
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(body, "flight recorder: last 1 of 2 events") {
		t.Fatalf("flight text wrong:\n%s", body)
	}
	if strings.Contains(body, "fork-start") || !strings.Contains(body, "fork-done") {
		t.Fatalf("?n=1 must keep only the newest event:\n%s", body)
	}
}

func TestFlightEndpointChrome(t *testing.T) {
	res, body := get(t, testServer().Handler(), "/flight?format=chrome")
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, body)
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(trace.TraceEvents))
	}
}

func TestFlightEndpointBadN(t *testing.T) {
	res, _ := get(t, testServer().Handler(), "/flight?n=bogus")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", res.StatusCode)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	h := testServer().Handler()
	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index broken: %d\n%s", res.StatusCode, body)
	}
	res, _ = get(t, h, "/nonsense")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", res.StatusCode)
	}
}

// TestStartServesLive binds a real listener on :0 and scrapes it — the
// exact path the -serve flag takes, minus the simulation.
func TestStartServesLive(t *testing.T) {
	defer obs.Disable()
	defer flight.Default.Disable()
	defer func() { kernel.TrackNew = nil }()
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !obs.On() || !flight.Default.On() {
		t.Fatal("Start must arm obs and the flight recorder")
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if errs := Lint(resp.Body); len(errs) != 0 {
		t.Fatalf("live scrape fails lint: %v", errs)
	}
}
