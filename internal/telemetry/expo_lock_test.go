package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"ufork/internal/sim"
)

// lockExposition extends the fixed exposition with a deterministic lock
// table and scheduler stats, the way handleMetrics does for a tracked,
// lockstat-armed kernel.
func lockExposition() Exposition {
	lt := sim.NewLockTable()
	bkl := lt.Meter("bkl", "kernel.enter")
	// Two tasks race a metered VLock on two cores: one uncontended
	// acquisition holding 1.5 µs, one that waits out that hold — wait
	// 1500 ns, hold totals 2 µs (1500 + 500).
	eng := sim.NewEngine(2)
	var l sim.VLock
	l.SetMeter(bkl)
	for i := 0; i < 2; i++ {
		i := i
		eng.Go("locker", 0, func(tk *sim.Task) {
			l.Lock(tk)
			if i == 0 {
				tk.Work(1500)
			} else {
				tk.Work(500)
			}
			l.Unlock(tk)
		})
	}
	eng.Run()
	fd := lt.Meter("fdtable", "kernel.FDTable")
	fd.Acquire(50)
	fd.ObserveHold(300)

	s := sim.NewSchedStats(2)
	s.RunqDepth.Observe(3)
	s.DispatchWait.Observe(1500)

	e := fixedExposition()
	e.Locks = lt.Meters()
	e.Sched = s
	return e
}

// TestLockSchedExposition checks the new families render in seconds with
// per-lock labels — and that the whole document still lints clean, so the
// producer and the CI validator agree about labeled histograms.
func TestLockSchedExposition(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMetrics(&b, lockExposition()); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		`ufork_lock_acquisitions_total{lock="bkl"} 2`,
		`ufork_lock_acquisitions_total{lock="fdtable"} 1`,
		`ufork_lock_contended_total{lock="bkl"} 1`,
		`ufork_lock_waiters_high_water{lock="bkl"} 1`,
		// 1500 ns wait and 2000 ns hold, rendered as seconds.
		`ufork_lock_wait_seconds_sum{lock="bkl"} 1.5e-06`,
		`ufork_lock_hold_seconds_sum{lock="bkl"} 2e-06`,
		`ufork_lock_wait_seconds_count{lock="bkl"} 1`,
		`ufork_lock_wait_seconds_bucket{lock="bkl",le="+Inf"} 1`,
		`ufork_sched_runq_depth_bucket{le="4"} 1`,
		`ufork_sched_dispatch_wait_seconds_sum 1.5e-06`,
		`ufork_sched_core_busy_seconds_total{core="0"} 0`,
		`ufork_sched_core_utilization{core="1"} 0`,
		"ufork_sched_horizon_seconds 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
	if errs := Lint(strings.NewReader(body)); len(errs) != 0 {
		t.Fatalf("lock/sched exposition fails lint: %v", errs)
	}
}

// TestLockSchedExpositionAbsentByDefault: a nil lock table and sched
// stats render nothing, keeping the plane-less exposition byte-identical
// to the pre-lockstat golden (TestGoldenExposition pins the bytes).
func TestLockSchedExpositionAbsentByDefault(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMetrics(&b, fixedExposition()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "ufork_lock_") || strings.Contains(b.String(), "ufork_sched_") {
		t.Fatalf("unarmed exposition leaks lock/sched families:\n%s", b.String())
	}
}
