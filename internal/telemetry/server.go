// Package telemetry is the live introspection plane: an HTTP server that
// exposes the obs registry as Prometheus text exposition, per-μprocess
// accounting as JSON, the flight recorder as text or Chrome trace, and
// net/http/pprof — while the simulation is still running. Production
// systems are scraped live and debugged from flight dumps, not stdout
// summaries; this is that surface for the simulated kernels.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/causal"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/memmap"
	"ufork/internal/obs/profile"
	"ufork/internal/sim"
)

// Server serves the telemetry endpoints. Construct with New; all handlers
// read only atomic state, so serving concurrently with a running
// simulation is safe.
type Server struct {
	obs    *obs.Obs
	fr     *flight.Recorder
	pl     *memmap.Plane
	causal *causal.Plane
	prof   *profile.Plane
	locks  *sim.LockTable
	cur    atomic.Pointer[kernel.Kernel]
	ln     net.Listener

	// Addr is the bound listen address, set by Start (useful with ":0").
	Addr string
}

// New creates a server over the given observability handle and flight
// recorder (nil selects the process-wide defaults). The server owns a
// memory-provenance plane; Track arms it on each kernel it adopts.
func New(o *obs.Obs, fr *flight.Recorder) *Server {
	if o == nil {
		o = obs.Default
	}
	if fr == nil {
		fr = flight.Default
	}
	pl := memmap.New()
	pl.Enable()
	// The causal and profiler planes start disabled — Start enables them
	// when the live telemetry plane is armed, so embedded/test servers
	// keep a genuine "not armed" /traces and /profile state.
	return &Server{obs: o, fr: fr, pl: pl, causal: causal.New(0),
		prof: profile.New(0), locks: sim.NewLockTable()}
}

// Track makes k the kernel /procs and per-proc /metrics families reflect,
// and arms the provenance plane on it — kernels register through
// kernel.TrackNew at construction, before their first frame allocation,
// so the plane's ledger is complete. Installed by Start so bench runs
// that boot many kernels always expose the current one.
func (s *Server) Track(k *kernel.Kernel) {
	s.cur.Store(k)
	if k != nil && k.Mem != nil {
		k.ArmMemmap(s.pl)
	}
	if k != nil && k.Eng != nil {
		k.ArmLockstat(s.locks)
	}
	if k != nil {
		k.ArmCausal(s.causal)
		k.ArmProfile(s.prof)
	}
}

// Profile returns the server's profiler plane. The bench -profile flag
// writes its folded dump from here when the live plane is serving, so a
// single plane feeds both the output file and /profile.
func (s *Server) Profile() *profile.Plane { return s.prof }

func (s *Server) procs() []kernel.ProcStat {
	if k := s.cur.Load(); k != nil {
		return k.ProcStats()
	}
	return nil
}

// Handler returns the telemetry mux: /metrics, /procs, /flight,
// /debug/pprof/*, and an index on /.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/procs", s.handleProcs)
	mux.HandleFunc("/memmap", s.handleMemmap)
	mux.HandleFunc("/locks", s.handleLocks)
	mux.HandleFunc("/sched", s.handleSched)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `ufork telemetry
  /metrics        Prometheus text exposition (obs registry + per-proc accounting)
  /procs          per-μprocess accounting, JSON
  /memmap         fork-tree memory provenance: per-node RSS/PSS/USS, frame lineage (?frames=256)
  /locks          lockstat: per-lock acquisitions, contention, wait/hold summaries, JSON
  /sched          scheduler telemetry: run-queue depth, dispatch latency, core utilization, JSON
  /flight         flight-recorder tail (?n=64, ?format=text|chrome)
  /traces         causal-trace exemplars: K slowest traces per group with critical-path segments (?k=N, ?format=json|chrome)
  /profile        virtual-time sampling profile, stack-attributed (?format=folded|pprof|top, ?n=20)
  /healthz        plane arming status, JSON (which planes are armed, whether a kernel is tracked)
  /debug/pprof/   host-process profiling
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := Exposition{
		Snap:          s.obs.Reg.Snapshot(),
		Hists:         s.obs.Reg.Histograms(),
		Procs:         s.procs(),
		FlightSeq:     s.fr.Seq(),
		FlightDropped: s.fr.Dropped(),
	}
	if s.pl.On() {
		snap := s.pl.Snapshot(0)
		e.Memmap = &snap
	}
	if s.causal.On() || s.causal.Started() > 0 {
		snap := s.causal.Snapshot(0)
		e.Traces = &snap
	}
	if k := s.cur.Load(); k != nil {
		if k.Locks != nil {
			e.Locks = k.Locks.Meters()
		}
		if k.Eng != nil {
			e.Sched = k.Eng.Sched()
		}
	}
	_ = WriteMetrics(w, e)
}

// handleLocks serves the lockstat snapshot of the tracked kernel. An
// untracked or unarmed server serves an empty array — the endpoint shape
// is stable either way.
func (s *Server) handleLocks(w http.ResponseWriter, _ *http.Request) {
	var stats []sim.LockStat
	if k := s.cur.Load(); k != nil {
		stats = k.Lockstat()
	}
	if stats == nil {
		stats = []sim.LockStat{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(stats)
}

// handleSched serves the scheduler-telemetry snapshot of the tracked
// kernel. An untracked or unarmed server serves an empty document with
// zero cores.
func (s *Server) handleSched(w http.ResponseWriter, _ *http.Request) {
	snap := &sim.SchedSnapshot{PerCore: []sim.CoreUtil{}}
	if k := s.cur.Load(); k != nil {
		if ks := k.SchedSnapshot(); ks != nil {
			snap = ks
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// handleMemmap serves the provenance plane's fork-tree snapshot: live
// frames by origin, per-μprocess RSS/PSS/USS with child links, and a
// bounded per-frame lineage sample (?frames=N, default 256).
func (s *Server) handleMemmap(w http.ResponseWriter, r *http.Request) {
	maxFrames := 256
	if q := r.URL.Query().Get("frames"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad frames", http.StatusBadRequest)
			return
		}
		maxFrames = v
	}
	snap := s.pl.Snapshot(maxFrames)
	if snap.Procs == nil {
		snap.Procs = []memmap.ProcNode{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

func (s *Server) handleProcs(w http.ResponseWriter, _ *http.Request) {
	procs := s.procs()
	if procs == nil {
		procs = []kernel.ProcStat{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(procs)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	// A recorder that was never armed and holds no events has nothing to
	// dump; make that a clean client-visible condition instead of an
	// empty 200 that reads like a healthy-but-idle system.
	if !s.fr.On() && s.fr.Seq() == 0 {
		http.Error(w, "flight recorder not armed", http.StatusConflict)
		return
	}
	n := flight.DumpTail
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.fr.WriteChromeTrace(w, n)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.fr.WriteText(w, n)
}

// handleTraces serves the causal plane's exemplar reservoirs: the K
// slowest finished traces per group as JSON (default) or Chrome
// trace_event format (?format=chrome), each with critical-path segments,
// flow edges, and the classifier's root-cause verdict.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	// Like /flight: a plane that was never enabled and saw no traces is a
	// clean client-visible condition, not a healthy-but-idle empty 200.
	if !s.causal.On() && s.causal.Started() == 0 {
		http.Error(w, "causal tracing not armed", http.StatusConflict)
		return
	}
	k := 0 // all retained exemplars
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
		k = v
	}
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = s.causal.WriteChromeTrace(w, k)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.causal.Snapshot(k))
	default:
		http.Error(w, "bad format", http.StatusBadRequest)
	}
}

// handleProfile serves the virtual-time sampling profile: folded-stack
// text (default; flamegraph.pl input), a gzip pprof profile.proto blob
// (?format=pprof; `go tool pprof`-parseable), or a top-N table
// (?format=top&n=20).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	// Like /flight and /traces: a plane that was never armed and holds
	// no samples is a clean client-visible condition, not a
	// healthy-but-idle empty 200.
	if !s.prof.On() && s.prof.Samples() == 0 {
		http.Error(w, "profiler not armed", http.StatusConflict)
		return
	}
	n := 20
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	snap := s.prof.Snapshot()
	switch r.URL.Query().Get("format") {
	case "", "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteFolded(w)
	case "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="profile.pb.gz"`)
		_ = snap.WritePprof(w)
	case "top":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.RenderTop(n))
	default:
		http.Error(w, "bad format", http.StatusBadRequest)
	}
}

// healthz is the /healthz document: which observability planes are
// armed and whether a kernel is tracked. CI smoke jobs poll it instead
// of sleeping a fixed interval before the first scrape.
type healthz struct {
	Tracked bool            `json:"tracked"`
	Planes  map[string]bool `json:"planes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	k := s.cur.Load()
	h := healthz{
		Tracked: k != nil,
		Planes: map[string]bool{
			"flight":   s.fr.On(),
			"memmap":   s.pl.On(),
			"lockstat": k != nil && k.Locks != nil,
			"causal":   s.causal.On(),
			"profile":  s.prof.On(),
		},
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}

// Start arms the live telemetry plane on addr: enables the obs layer and
// the default flight recorder, installs kernel tracking, binds the
// listener (failing fast on a bad address), and serves in the background
// for the life of the process. This is what the -serve flag calls.
func Start(addr string) (*Server, error) {
	obs.Enable()
	flight.Default.Enable()
	s := New(obs.Default, flight.Default)
	s.causal.Enable()
	s.prof.Enable()
	kernel.TrackNew = s.Track
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.Addr = ln.Addr().String()
	s.ln = ln
	go func() { _ = http.Serve(ln, s.Handler()) }()
	return s, nil
}

// Close releases the server's listener so its address can be rebound.
// In-flight requests race the close as usual for http.Serve; tests that
// recycle fixed ports must Close the previous server first.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}
