// Package telemetry is the live introspection plane: an HTTP server that
// exposes the obs registry as Prometheus text exposition, per-μprocess
// accounting as JSON, the flight recorder as text or Chrome trace, and
// net/http/pprof — while the simulation is still running. Production
// systems are scraped live and debugged from flight dumps, not stdout
// summaries; this is that surface for the simulated kernels.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/flight"
)

// Server serves the telemetry endpoints. Construct with New; all handlers
// read only atomic state, so serving concurrently with a running
// simulation is safe.
type Server struct {
	obs *obs.Obs
	fr  *flight.Recorder
	cur atomic.Pointer[kernel.Kernel]

	// Addr is the bound listen address, set by Start (useful with ":0").
	Addr string
}

// New creates a server over the given observability handle and flight
// recorder (nil selects the process-wide defaults).
func New(o *obs.Obs, fr *flight.Recorder) *Server {
	if o == nil {
		o = obs.Default
	}
	if fr == nil {
		fr = flight.Default
	}
	return &Server{obs: o, fr: fr}
}

// Track makes k the kernel /procs and per-proc /metrics families reflect.
// Installed as kernel.TrackNew by Start so bench runs that boot many
// kernels always expose the current one.
func (s *Server) Track(k *kernel.Kernel) { s.cur.Store(k) }

func (s *Server) procs() []kernel.ProcStat {
	if k := s.cur.Load(); k != nil {
		return k.ProcStats()
	}
	return nil
}

// Handler returns the telemetry mux: /metrics, /procs, /flight,
// /debug/pprof/*, and an index on /.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/procs", s.handleProcs)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `ufork telemetry
  /metrics        Prometheus text exposition (obs registry + per-proc accounting)
  /procs          per-μprocess accounting, JSON
  /flight         flight-recorder tail (?n=64, ?format=text|chrome)
  /debug/pprof/   host-process profiling
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteMetrics(w, Exposition{
		Snap:          s.obs.Reg.Snapshot(),
		Hists:         s.obs.Reg.Histograms(),
		Procs:         s.procs(),
		FlightSeq:     s.fr.Seq(),
		FlightDropped: s.fr.Dropped(),
	})
}

func (s *Server) handleProcs(w http.ResponseWriter, _ *http.Request) {
	procs := s.procs()
	if procs == nil {
		procs = []kernel.ProcStat{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(procs)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	n := flight.DumpTail
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.fr.WriteChromeTrace(w, n)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.fr.WriteText(w, n)
}

// Start arms the live telemetry plane on addr: enables the obs layer and
// the default flight recorder, installs kernel tracking, binds the
// listener (failing fast on a bad address), and serves in the background
// for the life of the process. This is what the -serve flag calls.
func Start(addr string) (*Server, error) {
	obs.Enable()
	flight.Default.Enable()
	s := New(obs.Default, flight.Default)
	kernel.TrackNew = s.Track
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.Addr = ln.Addr().String()
	go func() { _ = http.Serve(ln, s.Handler()) }()
	return s, nil
}
