package telemetry

import "testing"

// Histogram exposition-order validation: buckets are checked as emitted,
// not after sorting, because consumers stream them positionally.

func TestLintRejectsHistogramOutOfOrderBuckets(t *testing.T) {
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="20"} 1
ufork_h_bucket{le="10"} 1
ufork_h_bucket{le="+Inf"} 2
ufork_h_sum 25
ufork_h_count 2
`, "out of le order")
}

func TestLintRejectsHistogramDuplicateLe(t *testing.T) {
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="10"} 1
ufork_h_bucket{le="10"} 1
ufork_h_bucket{le="+Inf"} 2
ufork_h_sum 12
ufork_h_count 2
`, "duplicate le")
}

func TestLintRejectsHistogramCountMismatch(t *testing.T) {
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="10"} 2
ufork_h_bucket{le="+Inf"} 2
ufork_h_sum 12
ufork_h_count 3
`, "_count 3 != +Inf bucket 2")
}

func TestLintRejectsHistogramInfNotTerminal(t *testing.T) {
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="+Inf"} 2
ufork_h_bucket{le="10"} 1
ufork_h_sum 12
ufork_h_count 2
`, "out of le order")
}

// TestLintAcceptsLabeledHistogramGroups: a labeled histogram family (one
// logical histogram per lock) is valid when every label group carries its
// own complete ladder — the shape ufork_lock_wait_seconds emits.
func TestLintAcceptsLabeledHistogramGroups(t *testing.T) {
	input := `# TYPE ufork_lock_wait_seconds histogram
ufork_lock_wait_seconds_bucket{lock="bkl",le="1e-09"} 1
ufork_lock_wait_seconds_bucket{lock="bkl",le="+Inf"} 4
ufork_lock_wait_seconds_sum{lock="bkl"} 0.5
ufork_lock_wait_seconds_count{lock="bkl"} 4
ufork_lock_wait_seconds_bucket{lock="fdtable",le="1e-09"} 0
ufork_lock_wait_seconds_bucket{lock="fdtable",le="+Inf"} 2
ufork_lock_wait_seconds_sum{lock="fdtable"} 0.25
ufork_lock_wait_seconds_count{lock="fdtable"} 2
`
	if errs := lintStr(input); len(errs) != 0 {
		t.Fatalf("valid labeled histogram rejected: %v", errs)
	}
}

// TestLintValidatesEachLabelGroup: a complete ladder under one label set
// must not mask a broken sibling group.
func TestLintValidatesEachLabelGroup(t *testing.T) {
	wantErr(t, `# TYPE ufork_lock_wait_seconds histogram
ufork_lock_wait_seconds_bucket{lock="bkl",le="1e-09"} 1
ufork_lock_wait_seconds_bucket{lock="bkl",le="+Inf"} 4
ufork_lock_wait_seconds_sum{lock="bkl"} 0.5
ufork_lock_wait_seconds_count{lock="bkl"} 4
ufork_lock_wait_seconds_bucket{lock="fdtable",le="1e-09"} 0
ufork_lock_wait_seconds_bucket{lock="fdtable",le="+Inf"} 2
ufork_lock_wait_seconds_count{lock="fdtable"} 2
`, `ufork_lock_wait_seconds{lock=fdtable} missing _sum`)
	wantErr(t, `# TYPE ufork_lock_hold_seconds histogram
ufork_lock_hold_seconds_bucket{lock="bkl",le="+Inf"} 4
ufork_lock_hold_seconds_sum{lock="bkl"} 0.5
ufork_lock_hold_seconds_count{lock="bkl"} 4
ufork_lock_hold_seconds_bucket{lock="tmem",le="0.001"} 1
ufork_lock_hold_seconds_sum{lock="tmem"} 0.001
ufork_lock_hold_seconds_count{lock="tmem"} 1
`, `ufork_lock_hold_seconds{lock=tmem} missing le="+Inf"`)
}
