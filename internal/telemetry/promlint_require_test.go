package telemetry

import (
	"reflect"
	"strings"
	"testing"
)

// TestMissingFamilies covers the -require contract: a family is present
// only when at least one of its sample lines is — HELP/TYPE headers alone
// are an exported-nothing bug, and histogram families count through their
// _bucket/_sum/_count suffixes.
func TestMissingFamilies(t *testing.T) {
	expo := `# TYPE ufork_trace_started_total counter
ufork_trace_started_total 12
# TYPE ufork_trace_edges_total counter
ufork_trace_edges_total{kind="fork"} 3
# TYPE ufork_headers_only gauge
# TYPE ufork_fork_latency_ns histogram
ufork_fork_latency_ns_bucket{le="+Inf"} 2
ufork_fork_latency_ns_sum 300
ufork_fork_latency_ns_count 2
`
	cases := []struct {
		families []string
		missing  []string
	}{
		{[]string{"ufork_trace_started_total"}, nil},
		{[]string{"ufork_trace_edges_total"}, nil},
		{[]string{"ufork_fork_latency_ns"}, nil}, // via _bucket/_sum/_count
		{[]string{"ufork_headers_only"}, []string{"ufork_headers_only"}},
		{[]string{"ufork_trace_exemplars"}, []string{"ufork_trace_exemplars"}},
		{
			[]string{"ufork_trace_started_total", "ufork_nope", "ufork_fork_latency_ns", "ufork_headers_only"},
			[]string{"ufork_nope", "ufork_headers_only"},
		},
		{nil, nil},
	}
	for _, c := range cases {
		got := MissingFamilies(strings.NewReader(expo), c.families)
		if !reflect.DeepEqual(got, c.missing) {
			t.Errorf("MissingFamilies(%v) = %v, want %v", c.families, got, c.missing)
		}
	}
}
