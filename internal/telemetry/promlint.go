package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates Prometheus text exposition (format 0.0.4) without any
// external promtool dependency. It checks line syntax, metric/label name
// charsets, TYPE placement and family grouping, histogram completeness
// (+Inf bucket, _sum, _count, monotone cumulative buckets), and counter
// naming. A nil return means the input is a valid exposition.
func Lint(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := map[string]string{}    // family → declared type
	done := map[string]bool{}       // family → a later family started (grouping check)
	var current string              // family currently being emitted
	buckets := map[string][]le{}    // histogram family|labelset → buckets in emission order
	groups := map[string][]string{} // histogram family → label-set keys in first-seen order
	sums := map[string]bool{}       // histogram family|labelset → _sum seen
	counts := map[string]float64{}  // histogram family|labelset → _count value
	haveCount := map[string]bool{}  // histogram family|labelset → _count seen
	samples := map[string]int{}     // family → sample count
	seen := map[string]struct{}{}   // duplicate series guard
	order := []string{}             // family order for final checks

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				// Free-form comments are legal.
				continue
			}
			if !validMetricName(name) {
				fail(lineNo, "invalid metric name %q in # %s", name, kind)
				continue
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail(lineNo, "unknown metric type %q for %s", rest, name)
				}
				if _, dup := types[name]; dup {
					fail(lineNo, "duplicate # TYPE for %s", name)
				}
				if samples[name] > 0 {
					fail(lineNo, "# TYPE for %s appears after its samples", name)
				}
				types[name] = rest
				order = append(order, name)
			}
			continue
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			fail(lineNo, "malformed sample line %q", line)
			continue
		}
		if !validMetricName(name) {
			fail(lineNo, "invalid metric name %q", name)
		}
		for _, l := range labels {
			if !validLabelName(l.name) {
				fail(lineNo, "invalid label name %q on %s", l.name, name)
			}
		}
		fam := familyOf(name, types)
		if typ, declared := types[fam]; declared {
			if typ == "counter" && !strings.HasSuffix(fam, "_total") {
				fail(lineNo, "counter %s should end in _total", fam)
			}
		} else {
			fail(lineNo, "sample %s has no preceding # TYPE", name)
		}
		if done[fam] {
			fail(lineNo, "samples of %s are not grouped (family resumed after another began)", fam)
		}
		if current != "" && current != fam {
			done[current] = true
		}
		current = fam
		samples[fam]++
		series := name + "|" + labelKey(labels)
		if _, dup := seen[series]; dup {
			fail(lineNo, "duplicate series %s{%s}", name, labelKey(labels))
		}
		seen[series] = struct{}{}

		if types[fam] == "histogram" {
			// Histogram series are validated per label set: a labeled
			// family (ufork_lock_wait_seconds{lock=...}) is one logical
			// histogram per lock, each needing its own complete, ordered
			// bucket ladder plus _sum/_count.
			group := fam + "|" + groupKey(labels)
			switch {
			case name == fam+"_bucket":
				lev, found := labelValue(labels, "le")
				if !found {
					fail(lineNo, "histogram bucket %s missing le label", name)
					break
				}
				bound := math.Inf(1)
				if lev != "+Inf" {
					var err error
					bound, err = strconv.ParseFloat(lev, 64)
					if err != nil {
						fail(lineNo, "histogram bucket %s has unparsable le=%q", name, lev)
					}
				}
				if len(buckets[group]) == 0 {
					groups[fam] = append(groups[fam], group)
				}
				buckets[group] = append(buckets[group], le{bound, value, lineNo})
			case name == fam+"_sum":
				sums[group] = true
			case name == fam+"_count":
				haveCount[group] = true
				counts[group] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}

	for _, fam := range order {
		if types[fam] != "histogram" {
			continue
		}
		if len(groups[fam]) == 0 {
			errs = append(errs, fmt.Errorf("histogram %s has no _bucket series", fam))
			continue
		}
		for _, group := range groups[fam] {
			labelset := strings.TrimPrefix(group, fam+"|")
			at := fam
			if labelset != "" {
				at = fam + "{" + labelset + "}"
			}
			bs := buckets[group]
			// Buckets must be emitted in strictly increasing le order
			// with +Inf terminal — consumers stream them positionally, so
			// a sorted-after-the-fact check would hide real exposition
			// bugs (and a duplicate le shows up as non-increasing here).
			for i := 1; i < len(bs); i++ {
				if bs[i].bound == bs[i-1].bound {
					errs = append(errs, fmt.Errorf("line %d: histogram %s duplicate le=%g bucket",
						bs[i].line, at, bs[i].bound))
				} else if bs[i].bound < bs[i-1].bound {
					errs = append(errs, fmt.Errorf("line %d: histogram %s buckets emitted out of le order (le=%g after le=%g)",
						bs[i].line, at, bs[i].bound, bs[i-1].bound))
				}
				if bs[i].count < bs[i-1].count {
					errs = append(errs, fmt.Errorf("line %d: histogram %s buckets not cumulative (le=%g count %g < %g)",
						bs[i].line, at, bs[i].bound, bs[i].count, bs[i-1].count))
				}
			}
			if !math.IsInf(bs[len(bs)-1].bound, 1) {
				errs = append(errs, fmt.Errorf("histogram %s missing le=\"+Inf\" terminal bucket", at))
			}
			if !sums[group] {
				errs = append(errs, fmt.Errorf("histogram %s missing _sum", at))
			}
			if !haveCount[group] {
				errs = append(errs, fmt.Errorf("histogram %s missing _count", at))
			} else if math.IsInf(bs[len(bs)-1].bound, 1) && counts[group] != bs[len(bs)-1].count {
				errs = append(errs, fmt.Errorf("histogram %s _count %g != +Inf bucket %g",
					at, counts[group], bs[len(bs)-1].count))
			}
		}
	}
	return errs
}

// MissingFamilies reports which of the named metric families have no
// sample line in the exposition. A family counts as present only when at
// least one of its samples appears (HELP/TYPE headers alone do not) —
// the check CI uses to assert a plane actually exported data, e.g. the
// ufork_trace_* families after a traced sweep. Histogram families are
// matched through their _bucket/_sum/_count sample suffixes.
func MissingFamilies(r io.Reader, families []string) []string {
	present := map[string]struct{}{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _, ok := parseSample(line)
		if !ok {
			continue
		}
		present[name] = struct{}{}
		for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name {
				present[base] = struct{}{}
			}
		}
	}
	var missing []string
	for _, f := range families {
		if _, ok := present[f]; !ok {
			missing = append(missing, f)
		}
	}
	return missing
}

// groupKey renders a bucket line's label set with le removed — the
// identity of the logical histogram the bucket belongs to.
func groupKey(labels []label) string {
	rest := make([]label, 0, len(labels))
	for _, l := range labels {
		if l.name != "le" {
			rest = append(rest, l)
		}
	}
	return labelKey(rest)
}

type le struct {
	bound float64
	count float64
	line  int
}

type label struct{ name, value string }

// labelValue returns the value of the named label, if present.
func labelValue(labels []label, name string) (string, bool) {
	for _, l := range labels {
		if l.name == name {
			return l.value, true
		}
	}
	return "", false
}

// parseComment splits "# HELP name text" / "# TYPE name type" lines.
func parseComment(line string) (kind, name, rest string, ok bool) {
	f := strings.Fields(line)
	if len(f) < 3 || f[0] != "#" || (f[1] != "HELP" && f[1] != "TYPE") {
		return "", "", "", false
	}
	return f[1], f[2], strings.Join(f[3:], " "), true
}

// parseSample parses `name{l="v",...} value [ts]`, handling escapes inside
// quoted label values.
func parseSample(line string) (name string, labels []label, value float64, ok bool) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, false
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if rest == "" {
				return "", nil, 0, false
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, false
			}
			lname := rest[:eq]
			rest = rest[eq+2:]
			var b strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					j++
					b.WriteByte(rest[j])
					continue
				}
				if c == '"' {
					rest = rest[j+1:]
					closed = true
					break
				}
				b.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, false
			}
			labels = append(labels, label{lname, b.String()})
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// familyOf strips histogram/summary sample suffixes when the base family
// has a TYPE declaration.
func familyOf(name string, types map[string]string) string {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return s != ""
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func labelKey(labels []label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.name + "=" + l.value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
