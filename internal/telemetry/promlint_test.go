package telemetry

import (
	"strings"
	"testing"
)

func lintStr(s string) []error { return Lint(strings.NewReader(s)) }

// wantErr asserts exactly one lint error whose text contains frag.
func wantErr(t *testing.T, input, frag string) {
	t.Helper()
	errs := lintStr(input)
	if len(errs) == 0 {
		t.Fatalf("lint accepted invalid input (want error containing %q):\n%s", frag, input)
	}
	for _, e := range errs {
		if strings.Contains(e.Error(), frag) {
			return
		}
	}
	t.Fatalf("no lint error contains %q; got %v", frag, errs)
}

func TestLintAcceptsMinimalValid(t *testing.T) {
	input := `# HELP ufork_forks_total forks
# TYPE ufork_forks_total counter
ufork_forks_total 3
# HELP ufork_frames frames
# TYPE ufork_frames gauge
ufork_frames 640
# HELP ufork_lat_ns latency
# TYPE ufork_lat_ns histogram
ufork_lat_ns_bucket{le="100"} 1
ufork_lat_ns_bucket{le="+Inf"} 2
ufork_lat_ns_sum 151
ufork_lat_ns_count 2
`
	if errs := lintStr(input); len(errs) != 0 {
		t.Fatalf("valid exposition rejected: %v", errs)
	}
}

func TestLintRejectsSampleWithoutType(t *testing.T) {
	wantErr(t, "ufork_x_total 1\n", "no preceding # TYPE")
}

func TestLintRejectsCounterWithoutTotalSuffix(t *testing.T) {
	wantErr(t, "# TYPE ufork_forks counter\nufork_forks 3\n", "should end in _total")
}

func TestLintRejectsBadMetricName(t *testing.T) {
	wantErr(t, "# TYPE bad-name counter\n", "invalid metric name")
	wantErr(t, "bad-name 1\n", "invalid metric name")
	wantErr(t, "justaname\n", "malformed sample")
}

func TestLintRejectsBadLabelName(t *testing.T) {
	wantErr(t, "# TYPE ufork_x_total counter\nufork_x_total{bad-label=\"v\"} 1\n", "invalid label name")
}

func TestLintRejectsDuplicateSeries(t *testing.T) {
	wantErr(t, `# TYPE ufork_x_total counter
ufork_x_total{pid="1"} 1
ufork_x_total{pid="1"} 2
`, "duplicate series")
}

func TestLintRejectsInterleavedFamilies(t *testing.T) {
	wantErr(t, `# TYPE ufork_a_total counter
# TYPE ufork_b_total counter
ufork_a_total 1
ufork_b_total 1
ufork_a_total{pid="2"} 1
`, "not grouped")
}

func TestLintRejectsTypeAfterSamples(t *testing.T) {
	wantErr(t, `# TYPE ufork_a_total counter
ufork_a_total 1
# TYPE ufork_a_total counter
`, "appears after its samples")
}

func TestLintRejectsHistogramMissingInf(t *testing.T) {
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="10"} 1
ufork_h_sum 5
ufork_h_count 1
`, `missing le="+Inf"`)
}

func TestLintRejectsHistogramNonCumulative(t *testing.T) {
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="10"} 5
ufork_h_bucket{le="20"} 3
ufork_h_bucket{le="+Inf"} 5
ufork_h_sum 5
ufork_h_count 5
`, "not cumulative")
}

func TestLintRejectsHistogramMissingSumCount(t *testing.T) {
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="+Inf"} 1
ufork_h_count 1
`, "missing _sum")
	wantErr(t, `# TYPE ufork_h histogram
ufork_h_bucket{le="+Inf"} 1
ufork_h_sum 1
`, "missing _count")
}

func TestLintRejectsUnknownType(t *testing.T) {
	wantErr(t, "# TYPE ufork_x weird\n", "unknown metric type")
}

func TestLintHandlesEscapedLabelValues(t *testing.T) {
	input := `# TYPE ufork_x_total counter
ufork_x_total{proc="child \"q\"",pid="2"} 1
ufork_x_total{proc="back\\slash",pid="3"} 2
`
	if errs := lintStr(input); len(errs) != 0 {
		t.Fatalf("escaped label values rejected: %v", errs)
	}
}

func TestLintAllowsTimestampsAndFreeComments(t *testing.T) {
	input := `# a free-form comment
# TYPE ufork_x_total counter
ufork_x_total 1 1700000000000
`
	if errs := lintStr(input); len(errs) != 0 {
		t.Fatalf("timestamped sample rejected: %v", errs)
	}
}
