package telemetry

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// TestProfileEndpointErrorPaths is the /profile format table: an armed
// plane answers bad query input with a clean 400 and serves all three
// formats on good input.
func TestProfileEndpointErrorPaths(t *testing.T) {
	s := testServer()
	s.prof.Enable()
	cases := []struct {
		path     string
		status   int
		bodyFrag string
	}{
		{"/profile?format=xml", http.StatusBadRequest, "bad format"},
		{"/profile?format=flamegraph", http.StatusBadRequest, "bad format"},
		{"/profile?format=top&n=bogus", http.StatusBadRequest, "bad n"},
		{"/profile?format=top&n=-1", http.StatusBadRequest, "bad n"},
		{"/profile", http.StatusOK, ""},
		{"/profile?format=folded", http.StatusOK, ""},
		{"/profile?format=top", http.StatusOK, "no samples"},
	}
	for _, c := range cases {
		res, body := get(t, s.Handler(), c.path)
		if res.StatusCode != c.status {
			t.Errorf("GET %s = %d, want %d (body %q)", c.path, res.StatusCode, c.status, body)
		}
		if c.bodyFrag != "" && !strings.Contains(body, c.bodyFrag) {
			t.Errorf("GET %s body %q missing %q", c.path, body, c.bodyFrag)
		}
	}
}

// TestProfileEndpointNotArmed mirrors the flight/traces contract: never
// armed is 409; armed-then-disabled with samples keeps serving.
func TestProfileEndpointNotArmed(t *testing.T) {
	s := testServer()
	res, body := get(t, s.Handler(), "/profile")
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("unarmed /profile status = %d, want 409", res.StatusCode)
	}
	if !strings.Contains(body, "not armed") {
		t.Fatalf("unarmed /profile body = %q", body)
	}
	s.prof.Enable()
	k := trackedForkKernel(t, s)
	_ = k
	s.prof.Disable()
	if res, _ := get(t, s.Handler(), "/profile"); res.StatusCode != http.StatusOK {
		t.Fatalf("armed-then-disabled /profile status = %d, want 200", res.StatusCode)
	}
}

// trackedForkKernel boots a multicore kernel under the server's Track
// and runs a small fork storm so every armed plane has data.
func trackedForkKernel(t *testing.T, s *Server) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFault,
		Frames:    1 << 14,
	})
	s.Track(k)
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < 2; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				for j := 0; j < 50; j++ {
					k.Getpid(c)
					c.Compute(300)
				}
			}); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 2; i++ {
			if _, _, err := k.Wait(p); err != nil {
				t.Error(err)
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	return k
}

// TestProfileEndpointLive: a tracked fork-storm kernel produces a
// folded profile with fork-phase stacks, and the pprof blob is a valid
// gzip stream with protobuf content.
func TestProfileEndpointLive(t *testing.T) {
	s := testServer()
	s.prof.Enable()
	trackedForkKernel(t, s)

	_, folded := get(t, s.Handler(), "/profile?format=folded")
	if !strings.Contains(folded, "phase:fork:") {
		t.Fatalf("folded profile has no fork-phase stacks:\n%s", folded)
	}
	if !strings.Contains(folded, "proc:hello[") {
		t.Fatalf("folded profile has no proc frames:\n%s", folded)
	}

	_, top := get(t, s.Handler(), "/profile?format=top&n=5")
	if !strings.Contains(top, "top virtual-time stacks") {
		t.Fatalf("top table missing header:\n%s", top)
	}

	// Raw-body fetch for the binary blob: get() reads strings.
	req := httptest.NewRequest("GET", "/profile?format=pprof", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof fetch = %d", rec.Code)
	}
	zr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatalf("pprof blob is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("pprof gunzip: %v", err)
	}
	if len(raw) == 0 || !strings.Contains(string(raw), "phase:fork:") {
		t.Fatalf("decoded pprof proto missing fork-phase strings (%d bytes)", len(raw))
	}
}

// TestHealthzEndpoint: the document flips as planes arm and a kernel is
// tracked — the poll loop CI smoke jobs gate their first scrape on.
func TestHealthzEndpoint(t *testing.T) {
	s := testServer()
	parse := func() healthz {
		t.Helper()
		_, body := get(t, s.Handler(), "/healthz")
		var h healthz
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("bad /healthz JSON: %v\n%s", err, body)
		}
		return h
	}
	h := parse()
	if h.Tracked || h.Planes["causal"] || h.Planes["profile"] || h.Planes["lockstat"] {
		t.Fatalf("fresh server healthz = %+v, want untracked with causal/profile/lockstat off", h)
	}
	if !h.Planes["memmap"] {
		t.Fatalf("memmap plane should be armed at construction: %+v", h)
	}
	s.causal.Enable()
	s.prof.Enable()
	trackedForkKernel(t, s)
	h = parse()
	if !h.Tracked || !h.Planes["causal"] || !h.Planes["profile"] || !h.Planes["lockstat"] {
		t.Fatalf("tracked server healthz = %+v, want all planes armed", h)
	}
}
