package core_test

import (
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/sim"
)

// runParallelForks drives a capability-dense workload through repeated
// forks on a kernel whose μFork engine fans eager page copies across par
// host workers, and returns the virtual-time observables: the last fork's
// full statistics, the parent's final clock, and the total relocation
// count. Run under -race this also exercises the worker pool for data
// races (CopyFull queues every image page, so the pool genuinely fans
// out).
func runParallelForks(t *testing.T, mode core.CopyMode, par int) (kernel.ForkStats, sim.Time, uint64) {
	t.Helper()
	e := core.New(mode)
	e.Parallelism = par
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    e,
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
	spec := kernel.HelloWorldSpec()
	spec.HeapPages = 512
	var stats kernel.ForkStats
	var end sim.Time
	if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
		// Salt the heap with in-region capabilities so eager copies have
		// relocation work on many (not all) pages.
		for pg := 0; pg < spec.HeapPages; pg += 3 {
			off := uint64(pg) * kernel.PageSize
			c := p.HeapCap.SetAddr(p.HeapCap.Base() + off)
			if err := p.StoreCap(p.HeapCap, off, c); err != nil {
				t.Error(err)
				return
			}
		}
		for n := 0; n < 3; n++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				// The child follows one relocated pointer before exiting,
				// proving the parallel relocation pass ran.
				got, err := c.LoadCap(c.HeapCap, 0)
				if err != nil {
					t.Error(err)
				} else if got.Tag() && got.Addr() != c.HeapCap.Base() {
					t.Errorf("child heap cap not relocated: %#x", got.Addr())
				}
				k.Exit(c, 0)
			}); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Error(err)
				return
			}
		}
		stats = p.LastFork
		end = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	return stats, end, k.SharedAS.Stats.CapsRelocated.Value()
}

// TestParallelForkDeterministic pins the fork path's virtual-time
// invariant: every statistic and clock reading is bit-identical whatever
// the host worker-pool width, for every copy mode.
func TestParallelForkDeterministic(t *testing.T) {
	for _, mode := range []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull} {
		t.Run(mode.String(), func(t *testing.T) {
			baseStats, baseEnd, baseRelocs := runParallelForks(t, mode, 1)
			if mode == core.CopyFull && baseStats.PagesCopied < 512 {
				t.Fatalf("CopyFull copied only %d pages", baseStats.PagesCopied)
			}
			for _, par := range []int{2, 4, 8} {
				stats, end, relocs := runParallelForks(t, mode, par)
				if stats != baseStats || end != baseEnd || relocs != baseRelocs {
					t.Fatalf("parallelism %d changed virtual-time results:\ngot  %+v end=%d relocs=%d\nwant %+v end=%d relocs=%d",
						par, stats, end, relocs, baseStats, baseEnd, baseRelocs)
				}
			}
		})
	}
}
