package core_test

// Adversarial tests of the isolation invariants (§4.3 "Cross-μprocess
// Isolation", §4.4 "μprocess-Kernel Isolation"): each test plays an
// attacker-controlled μprocess trying to escape its region or reach a
// sibling, and asserts the capability machinery refuses.

import (
	"errors"
	"testing"

	"ufork/internal/cap"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/vm"
)

// TestSiblingRegionsUnreachable: two children of the same parent cannot
// touch each other's memory through any capability they hold.
func TestSiblingRegionsUnreachable(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		var firstRegion kernel.Region
		// Keep child 1 alive while child 2 probes (otherwise its region is
		// legitimately recycled): it blocks on a pipe until the probe ran.
		readyR, readyW, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		doneR, doneW, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			firstRegion = c.Region
			if err := c.Store(c.HeapCap, 0, []byte("secret-of-1")); err != nil {
				t.Errorf("child1 store: %v", err)
			}
			if _, err := k.Write(c, readyW, []byte{1}); err != nil {
				t.Errorf("child1 ready: %v", err)
			}
			if _, err := k.Read(c, doneR, make([]byte, 1)); err != nil {
				t.Errorf("child1 done wait: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Read(p, readyR, make([]byte, 1)); err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			// Attack 1: re-aim an own capability at the sibling's region.
			probe := c.DDC.SetAddr(firstRegion.Base)
			buf := make([]byte, 8)
			if err := c.Load(probe, 0, buf); !errors.Is(err, kernel.ErrCapFault) {
				t.Errorf("sibling read via retargeted DDC: %v, want cap fault", err)
			}
			// Attack 2: try to grow bounds to cover the sibling.
			if _, err := c.DDC.SetAddr(firstRegion.Base).SetBounds(64); !errors.Is(err, cap.ErrMonotonic) && err == nil {
				t.Error("bounds grew over a sibling region")
			}
			// Attack 3: fabricate a capability from raw integers — untagged,
			// so dereference fails.
			forged := cap.Null().SetAddr(firstRegion.Base)
			if err := c.Load(forged, 0, buf); !errors.Is(err, kernel.ErrCapFault) {
				t.Errorf("forged capability deref: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Release child 1 and reap both.
		if _, err := k.Write(p, doneW, []byte{1}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestChildCannotReachParent: after fork, no capability the child can
// construct reaches live parent memory.
func TestChildCannotReachParent(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		if err := p.Store(p.HeapCap, 0, []byte("parent-secret")); err != nil {
			t.Fatal(err)
		}
		parentHeap := p.HeapCap
		_, err := k.Fork(p, func(c *kernel.Proc) {
			buf := make([]byte, 13)
			// The parent's heap capability value (e.g. leaked through a
			// register the program treats as an integer) has a parent
			// address — but the child's relocated register file never
			// carries it tagged; reconstructing it yields an untagged cap.
			leaked := cap.Null().SetAddr(parentHeap.Addr())
			if err := c.Load(leaked, 0, buf); !errors.Is(err, kernel.ErrCapFault) {
				t.Errorf("leaked-address deref: %v", err)
			}
			// Even the child's own DDC, retargeted at the parent, fails.
			probe := c.DDC.SetAddr(parentHeap.Base())
			if err := c.Load(probe, 0, buf); !errors.Is(err, kernel.ErrCapFault) {
				t.Errorf("retargeted DDC into parent: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSentryCannotBeForgedOrInspected: the syscall entry token is sealed;
// user code cannot unseal, retarget, or fabricate it (§4.4, principle 1).
func TestSentryCannotBeForgedOrInspected(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		s := p.SyscallCap
		if !s.IsSealed() {
			t.Fatal("syscall cap must be sealed")
		}
		// Dereference refused.
		if err := p.Load(s, 0, make([]byte, 8)); !errors.Is(err, kernel.ErrCapFault) {
			t.Errorf("sentry deref: %v", err)
		}
		// Retargeting clears the tag.
		if s.Add(64).Tag() {
			t.Error("retargeted sentry kept its tag")
		}
		// Unsealing requires an unsealing capability the process lacks.
		if _, err := s.Unseal(p.DDC); err == nil {
			t.Error("sentry unsealed with a data capability")
		}
		// A self-made "sentry" is untagged garbage.
		fake := cap.Null().SetAddr(k.KernelRegion.Base)
		if _, err := fake.InvokeSentry(); err == nil {
			t.Error("forged sentry invoked")
		}
	})
}

// TestStaleCapabilityTagClearedByOverwrite: partially overwriting a stored
// pointer destroys it — the attacker cannot splice address bytes into an
// existing capability (§2.4).
func TestStaleCapabilityTagClearedByOverwrite(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		target, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 4096).SetBounds(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StoreCap(p.HeapCap, 0, target); err != nil {
			t.Fatal(err)
		}
		// Splice attack: rewrite the address bytes of the stored cap.
		if err := p.Store(p.HeapCap, 0, []byte{0xff, 0xff}); err != nil {
			t.Fatal(err)
		}
		got, err := p.LoadCap(p.HeapCap, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Error("spliced capability survived with a valid tag")
		}
		if err := p.Load(got, 0, make([]byte, 4)); !errors.Is(err, kernel.ErrCapFault) {
			t.Errorf("deref of spliced capability: %v", err)
		}
	})
}

// TestCoPABarrierGuardsSharedCaps: while a page is still CoPA-shared, the
// child cannot read a parent capability out of it — the load faults first
// and relocation happens before the value is observable.
func TestCoPABarrierGuardsSharedCaps(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		tgt, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 8192).SetBounds(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StoreCap(p.HeapCap, 0, tgt); err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			// Before any fault, the child's PTE still references the
			// parent frame — but with the LC-fault bit set.
			vpn := vm.VPNOf(c.HeapCap.Base())
			pte := c.AS.Lookup(vpn)
			if pte == nil {
				t.Error("heap page unmapped in child")
				return
			}
			if pte.Prot&vm.ProtCapLoadFault == 0 {
				t.Error("shared page lacks the capability-load barrier")
			}
			got, err := c.LoadCap(c.HeapCap, 0)
			if err != nil {
				t.Errorf("cap load: %v", err)
				return
			}
			if !c.Region.Contains(got.Addr()) {
				t.Errorf("observed an unrelocated parent capability: %v", got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWX: no segment is simultaneously writable and executable.
func TestWX(t *testing.T) {
	for s := kernel.Segment(0); s < 10; s++ {
		prot := s.NaturalProt()
		if prot&vm.ProtWrite != 0 && prot&vm.ProtExec != 0 {
			t.Errorf("segment %v is W^X-violating: %v", s, prot)
		}
	}
}
