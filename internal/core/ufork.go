// Package core implements μFork: POSIX fork within a single address space
// (§3–§4 of the paper).
//
// On fork, the child μprocess receives a fresh contiguous region of the
// shared virtual address space and is initially mapped onto the parent's
// physical pages. Pages containing the GOT and allocator metadata are
// copied and relocated eagerly; everything else is copied lazily under one
// of three strategies (§3.8):
//
//   - CopyFull — synchronous copy of the whole image at fork;
//   - CopyOnAccess (CoA) — pages are mapped inaccessible to the child; any
//     child access, and any parent write, triggers copy + relocation;
//   - CopyOnPointerAccess (CoPA) — pages are mapped read-only with the
//     fault-on-capability-load bit; parent/child writes and child
//     capability loads trigger copy + relocation, while plain child reads
//     proceed on the shared page.
//
// Relocation uses the CHERI tag plane: a 16-byte-stride scan of each copied
// page finds every genuine capability; those pointing outside the child's
// region are rebased to the corresponding offset of the child region and
// their bounds clamped to it, so no parent capability ever leaks to the
// child (§4.2–§4.3).
package core

import (
	"fmt"

	"ufork/internal/cap"
	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/sim"
	"ufork/internal/tmem"
	"ufork/internal/vm"
)

// CopyMode selects the state-transfer strategy (§3.8).
type CopyMode int

const (
	// CopyOnPointerAccess is the paper's headline optimisation (CoPA).
	CopyOnPointerAccess CopyMode = iota
	// CopyOnAccess (CoA) is the fallback for hardware without a
	// fault-on-capability-load bit.
	CopyOnAccess
	// CopyFull synchronously copies the entire parent image at fork.
	CopyFull
)

func (m CopyMode) String() string {
	switch m {
	case CopyOnPointerAccess:
		return "CoPA"
	case CopyOnAccess:
		return "CoA"
	case CopyFull:
		return "full-copy"
	default:
		return "unknown"
	}
}

// Engine is the μFork fork engine.
type Engine struct {
	Mode CopyMode
	// Parallelism bounds the host-side worker pool that fans eager
	// per-page copy+relocate work across goroutines. Zero means one
	// worker per available CPU; one forces the serial path. Virtual-time
	// results are invariant under this setting — only host wall-clock
	// changes.
	Parallelism int
}

// New returns a μFork engine using the given copy strategy.
func New(mode CopyMode) *Engine { return &Engine{Mode: mode} }

// Name implements kernel.ForkEngine.
func (e *Engine) Name() string { return "uFork/" + e.Mode.String() }

// Fork implements kernel.ForkEngine (§3.5 "Forking a μprocess").
func (e *Engine) Fork(k *kernel.Kernel, parent, child *kernel.Proc) (kernel.ForkStats, error) {
	var stats kernel.ForkStats
	m := k.Machine
	t0 := parent.Task.Now()

	// 1. Reserve enough contiguous virtual memory for the entire child
	// μprocess (§3.5 step 1). The reservation is a bump-allocator hit (or
	// a size-class reuse), so no virtual time is modelled for it; the
	// phase still appears in traces with its true (zero) duration.
	child.AS = parent.AS // single address space
	child.Region = k.ReserveRegion(parent.Region.Size, parent.Spec.Name)
	child.Pending = vm.NewPageSet(vm.VPNOf(child.Region.Base), int(child.Region.Size/vm.PageSize))

	// 2. Copy the parent's page-table entries. The bulk PTE copy is cheap;
	// GOT and allocator-metadata pages are proactively copied and
	// relocated so the child immediately observes correct references when
	// loading through the GOT or touching heap metadata (§3.5, §3.7).
	startVPN := vm.VPNOf(parent.Region.Base)
	endVPN := vm.VPNOf(parent.Region.Top()-1) + 1
	var copyErr error
	// Eager pages are allocated and mapped serially during the PTE walk
	// (the allocator and page table are shared state, and frame-number
	// assignment must stay deterministic); the page copies and relocation
	// scans — the actual byte work — are queued and fanned out across the
	// worker pool below. CopyFull queues the whole image, so its queue is
	// sized up front; page descriptors come from a slab rather than one
	// heap object per page.
	var eager []eagerCopy
	if e.Mode == CopyFull {
		eager = make([]eagerCopy, 0, parent.Region.Size/vm.PageSize)
	}
	var slab pageSlab
	// The walk visits pages in ascending order, so the current segment
	// covers a long run of consecutive pages; cache it and only consult
	// SegmentOf when the offset leaves its bounds.
	var curSeg kernel.Segment
	var curStart, curEnd uint64
	parent.AS.RangeVPNs(startVPN, endVPN, func(vpn vm.VPN, pte *vm.PTE) {
		if copyErr != nil {
			return
		}
		off := uint64(vpn)*vm.PageSize - parent.Region.Base
		seg := curSeg
		if off < curStart || off >= curEnd {
			var ok bool
			seg, ok = parent.Layout.SegmentOf(off)
			if !ok {
				copyErr = fmt.Errorf("core: page %#x outside image layout", uint64(vpn)*vm.PageSize)
				return
			}
			curSeg = seg
			curStart = parent.Layout.Offsets[seg]
			curEnd = curStart + parent.Layout.SegLen(seg)
		}
		childVPN := vm.VPNOf(child.Region.Base + off)
		natural := seg.NaturalProt()
		proactive := seg == kernel.SegGOT || seg == kernel.SegAllocMeta
		if e.Mode == CopyOnAccess && seg == kernel.SegStack {
			// Under CoA every child access faults — including the stack
			// accesses of the return-from-fork path itself. Copying the
			// stack eagerly is what lets the child resume at all, and is
			// why CoA forks are slightly slower than CoPA forks (Fig. 4:
			// 283 µs vs 260 µs at 100 MB).
			proactive = true
		}

		stats.PTEsCopied++
		stats.Latency += m.PTECopy
		stats.PTECopyTime += m.PTECopy

		if proactive || e.Mode == CopyFull {
			pfn, err := k.Mem.AllocFrameForCopy()
			if err != nil {
				copyErr = err
				return
			}
			if err := child.AS.Map(childVPN, slab.page(pfn), natural); err != nil {
				// The frame was allocated but never mapped: free it here or
				// nothing ever will (the abort path only walks the page table).
				_ = k.Mem.FreeFrame(pfn)
				copyErr = err
				return
			}
			eager = append(eager, eagerCopy{dst: pfn, src: pte.Page.PFN})
			stats.PagesCopied++
			stats.Latency += m.PageCopy
			stats.EagerCopyTime += m.PageCopy
			if proactive {
				stats.ProactivePages++
			}
			return
		}

		// Lazy sharing: downgrade the parent to read-only (write faults
		// copy for the writer) and map the child per strategy.
		parentShared := pte.Prot &^ vm.ProtWrite
		if err := parent.AS.Protect(vpn, parentShared); err != nil {
			copyErr = err
			return
		}
		var childProt vm.Prot
		switch e.Mode {
		case CopyOnAccess:
			childProt = 0 // any access faults
		case CopyOnPointerAccess:
			childProt = (natural &^ vm.ProtWrite) | vm.ProtCapLoadFault
		}
		if err := child.AS.Map(childVPN, pte.Page, childProt); err != nil {
			copyErr = err
			return
		}
		child.Pending.Add(childVPN)
	})
	if copyErr != nil {
		return stats, copyErr
	}

	// Fan the queued copy+relocate work out across the worker pool. Each
	// job touches only its own private destination frame (and reads a
	// source frame no job writes), so jobs are independent; the per-job
	// relocation counts are folded into the virtual-time accounting
	// serially afterwards, and Latency is a sum, so the result is
	// identical to the serial order.
	parallelFor(len(eager), e.workers(), func(i int) {
		job := &eager[i]
		if job.err = k.Mem.CopyFrame(job.dst, job.src); job.err != nil {
			return
		}
		job.relocs, job.err = e.relocatePage(k, child, job.dst)
	})
	for i := range eager {
		if eager[i].err != nil {
			return stats, eager[i].err
		}
		relocs := eager[i].relocs
		stats.CapsRelocated += relocs
		stats.Latency += m.CapScanPage + sim.Time(relocs)*m.CapRelocate
		stats.ScanTime += m.CapScanPage + sim.Time(relocs)*m.CapRelocate
	}

	// Inherit the parent's own unresolved relocations: a page the parent
	// never privatised still holds grandparent-region capabilities, and the
	// child shares that page. (CopyFull resolved everything above.)
	if e.Mode != CopyFull {
		parent.Pending.Range(func(vpn vm.VPN) bool {
			off := uint64(vpn)*vm.PageSize - parent.Region.Base
			child.Pending.Add(vm.VPNOf(child.Region.Base + off))
			return true
		})
	}

	// 3. Relocate the capability register file (§3.5 step 2): tags extend
	// to registers, so genuine pointers are distinguished from integers.
	scanRelocs := stats.CapsRelocated
	e.relocateRegisters(k, parent, child)
	stats.CapsRelocated += kernel.NumRegs
	stats.Latency += m.RegRelocate
	stats.RegTime = m.RegRelocate

	if obs.On() {
		// Phase spans reconstructed on the parent's timeline: kernel.Fork
		// advances the parent's clock by stats.Latency when the engine
		// returns, so [t0, t0+Latency) is exactly where this fork lands in
		// virtual time. relocation-scan nests inside eager-copy — the tag
		// scans happen on the pages the eager phase copies.
		tr := k.Obs.Tracer
		pid, tid := int(parent.PID), parent.Task.ID
		cur := uint64(t0)
		tr.Complete(pid, tid, "reserve", "fork", cur, uint64(stats.ReserveTime),
			obs.A("region-base", child.Region.Base), obs.A("region-size", child.Region.Size))
		cur += uint64(stats.ReserveTime)
		tr.Complete(pid, tid, "pte-copy", "fork", cur, uint64(stats.PTECopyTime),
			obs.A("ptes", uint64(stats.PTEsCopied)))
		cur += uint64(stats.PTECopyTime)
		tr.Complete(pid, tid, "eager-copy", "fork", cur, uint64(stats.EagerCopyTime+stats.ScanTime),
			obs.A("pages", uint64(stats.PagesCopied)), obs.A("proactive", uint64(stats.ProactivePages)))
		tr.Complete(pid, tid, "relocation-scan", "fork", cur+uint64(stats.EagerCopyTime), uint64(stats.ScanTime),
			obs.A("caps", uint64(scanRelocs)))
		cur += uint64(stats.EagerCopyTime + stats.ScanTime)
		tr.Complete(pid, tid, "reg-relocate", "fork", cur, uint64(stats.RegTime),
			obs.A("regs", uint64(kernel.NumRegs)))
	}

	return stats, nil
}

// eagerCopy is one queued unit of fork-time page work: copy frame src into
// the child's private frame dst, then scan and relocate it. relocs and err
// are filled by the worker that executes the job.
type eagerCopy struct {
	dst, src tmemPFN
	relocs   int
	err      error
}

// pageSlab hands out page descriptors in blocks of 256: a CopyFull fork
// maps tens of thousands of fresh pages and one heap object per descriptor
// was a measurable share of fork wall-clock. Descriptors stay reachable
// through the page table; a block is collected when its last page dies.
type pageSlab struct {
	block []vm.Page
}

func (s *pageSlab) page(pfn tmemPFN) *vm.Page {
	if len(s.block) == 0 {
		s.block = make([]vm.Page, 256)
	}
	p := &s.block[0]
	s.block = s.block[1:]
	p.PFN = pfn
	return p
}

// relocatePage performs the 16-byte-stride tag scan over one frame and
// relocates every capability that points outside the child's region
// (§4.2 "Copy-on-Pointer-Access", three-step copy). The scan walks the
// packed tag plane via ForEachTagged — allocation-free, and frames with a
// zero cached tag count skip the loop entirely. Safe to run concurrently
// with other relocatePage calls on distinct frames: it writes only the
// frame it scans, and the shared counters it touches are atomic.
func (e *Engine) relocatePage(k *kernel.Kernel, child *kernel.Proc, pfn tmemPFN) (int, error) {
	n := 0
	err := k.Mem.ForEachTagged(pfn, func(off uint64) error {
		c, err := k.Mem.LoadCap(pfn, off)
		if err != nil {
			return err
		}
		nc, changed := RelocateCap(k, child, c)
		if changed {
			if err := k.Mem.RewriteCap(pfn, off, nc); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	child.AS.Stats.CapsRelocated.Add(uint64(n))
	return n, nil
}

// RelocateCap maps a capability from an ancestor μprocess region into the
// child's region. Sealed capabilities (kernel entry sentries) and
// capabilities already confined to the child pass through unchanged. The
// relocated capability's bounds are clamped to the child region, restoring
// the §4.2 security invariant: every capability reachable by a μprocess
// grants access only to that μprocess's memory.
func RelocateCap(k *kernel.Kernel, child *kernel.Proc, c cap.Capability) (cap.Capability, bool) {
	if !c.Tag() || c.IsSealed() {
		return c, false
	}
	if child.Region.Contains(c.Addr()) && c.Base() >= child.Region.Base && c.Top() <= child.Region.Top() {
		return c, false
	}
	// Identify the region the capability refers to. Normally the direct
	// parent; for pages the parent itself never privatised it can be an
	// older ancestor.
	origin, ok := k.FindRegion(c.Addr())
	if !ok || origin.Base == k.KernelRegion.Base {
		// Not user-region memory: a capability the relocation pass does
		// not understand. Clearing the tag would also be sound; we leave
		// kernel-region capabilities alone as the loader never places any
		// in user pages.
		return c, false
	}
	if origin.Base == child.Region.Base {
		// In-region cursor but over-wide bounds: clamp only.
		nc := c.ClampBounds(child.Region.Base, child.Region.Top())
		return nc, true
	}
	delta := int64(child.Region.Base) - int64(origin.Base)
	nc := c.Rebase(delta).ClampBounds(child.Region.Base, child.Region.Top())
	return nc, true
}

// relocateRegisters rebuilds the child's capability register file from the
// parent's, relocating every tagged register (§3.5 step 2).
func (e *Engine) relocateRegisters(k *kernel.Kernel, parent, child *kernel.Proc) {
	reloc := func(c cap.Capability) cap.Capability {
		nc, _ := RelocateCap(k, child, c)
		return nc
	}
	for i, c := range parent.Regs {
		child.Regs[i] = reloc(c)
	}
	child.DDC = reloc(parent.DDC)
	child.PCC = relocCode(k, child, parent.PCC)
	child.StackCap = reloc(parent.StackCap)
	child.HeapCap = reloc(parent.HeapCap)
	child.GOTCap = reloc(parent.GOTCap)
	child.MetaCap = reloc(parent.MetaCap)
	child.DataCap = reloc(parent.DataCap)
	child.TLSCap = reloc(parent.TLSCap)
	child.SyscallCap = parent.SyscallCap // sealed sentry: shared by design
}

// relocCode relocates the program counter capability, preserving execute
// permissions (the PCC's bounds are what PIC code derives relative
// references from, §4.2).
func relocCode(k *kernel.Kernel, child *kernel.Proc, pcc cap.Capability) cap.Capability {
	nc, _ := RelocateCap(k, child, pcc)
	return nc
}

// HandleFault implements kernel.ForkEngine: CoW/CoA/CoPA resolution
// (Fig. 2). Writes by either side, any child access under CoA, and child
// capability loads under CoPA privatise the page; if the page still holds
// ancestor capabilities they are relocated in place.
func (e *Engine) HandleFault(k *kernel.Kernel, p *kernel.Proc, f *vm.Fault, acc vm.Access) error {
	if !p.Region.Contains(f.VA) {
		return fmt.Errorf("core: access outside μprocess region: %v", f)
	}
	vpn := vm.VPNOf(f.VA)
	off := f.VA - p.Region.Base
	seg, ok := p.Layout.SegmentOf(off)
	if !ok {
		return fmt.Errorf("core: fault outside image: %v", f)
	}
	natural := seg.NaturalProt()

	switch f.Kind {
	case vm.FaultWriteProtect:
		if natural&vm.ProtWrite == 0 {
			return fmt.Errorf("core: write to read-only %v segment: %v", seg, f)
		}
	case vm.FaultCapLoad, vm.FaultNoRead:
		// CoPA capability-load barrier or CoA inaccessible page: resolve by
		// privatising below.
	default:
		return fmt.Errorf("core: unresolvable fault: %v", f)
	}

	page, copied, err := p.AS.MakePrivate(vpn, natural)
	if err != nil {
		return err
	}
	m := k.Machine
	t0 := p.Task.Now()
	if copied {
		p.Task.Advance(m.PageCopy)
	}
	relocs := 0
	scanned := false
	if p.Pending.Contains(vpn) {
		// The frame content still refers to the ancestor region: scan and
		// relocate (in place when the frame was adopted rather than
		// copied — the copy was avoided but the relocation cannot be).
		scanned = true
		scanStart := p.Task.Now()
		p.Task.Advance(m.CapScanPage)
		if relocs, err = e.relocatePage(k, p, page.PFN); err != nil {
			return err
		}
		p.Task.Advance(sim.Time(relocs) * m.CapRelocate)
		if obs.On() {
			k.Obs.Tracer.Complete(int(p.PID), p.Task.ID, "relocation-scan", "fault",
				uint64(scanStart), uint64(p.Task.Now()-scanStart), obs.A("caps", uint64(relocs)))
		}
		p.Pending.Remove(vpn)
	}
	if obs.On() && (copied || scanned) {
		var copiedN uint64
		if copied {
			copiedN = 1
		}
		k.Obs.Tracer.Complete(int(p.PID), p.Task.ID, "copy+relocate", "fault",
			uint64(t0), uint64(p.Task.Now()-t0),
			obs.A("pages-copied", copiedN), obs.A("caps", uint64(relocs)))
		k.Obs.Reg.Counter("fault.copy-relocate").Inc()
	}
	return nil
}

// ChildStart implements kernel.ForkEngine; μFork children need no
// post-fork fixup beyond what fork already did.
func (e *Engine) ChildStart(k *kernel.Kernel, child *kernel.Proc) {}

// tmemPFN aliases the physical frame number type to keep signatures tidy.
type tmemPFN = tmem.PFN
