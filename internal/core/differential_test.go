package core_test

// Differential testing of fork semantics: random sequences of memory
// writes, forks, child mutations and reads are applied both to the
// simulated system and to a trivially correct reference model (fork =
// deep copy of a byte array). Any divergence is a transparency bug (R2).

import (
	"fmt"
	"math/rand"
	"testing"

	"ufork/internal/baseline/posix"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// refProc is the reference model of one process: a plain byte array.
type refProc struct {
	heap []byte
}

func (r *refProc) fork() *refProc {
	return &refProc{heap: append([]byte(nil), r.heap...)}
}

// differentialRound runs one random schedule against both models.
func differentialRound(t *testing.T, seed int64, mode core.CopyMode) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const heapBytes = 32 * 4096

	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(mode),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 15,
	})
	spec := kernel.HelloWorldSpec()
	spec.HeapPages = heapBytes / kernel.PageSize

	if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
		ref := &refProc{heap: make([]byte, heapBytes)}

		// mutate applies the same random write to both models.
		mutate := func(proc *kernel.Proc, r *refProc) error {
			off := uint64(rng.Intn(heapBytes - 64))
			n := rng.Intn(64) + 1
			blob := make([]byte, n)
			rng.Read(blob)
			copy(r.heap[off:], blob)
			return proc.Store(proc.HeapCap, off, blob)
		}
		// verify compares a random window across models.
		verify := func(proc *kernel.Proc, r *refProc, who string) error {
			off := uint64(rng.Intn(heapBytes - 256))
			n := rng.Intn(256) + 1
			got := make([]byte, n)
			if err := proc.Load(proc.HeapCap, off, got); err != nil {
				return err
			}
			want := r.heap[off : off+uint64(n)]
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("%s diverged at heap+%d+%d: got %d want %d",
						who, off, i, got[i], want[i])
				}
			}
			return nil
		}

		// The schedule: parent ops interleaved with forks whose children
		// run their own random ops and verifications.
		for step := 0; step < 30; step++ {
			switch rng.Intn(4) {
			case 0, 1:
				if err := mutate(p, ref); err != nil {
					t.Errorf("parent mutate: %v", err)
					return
				}
			case 2:
				if err := verify(p, ref, "parent"); err != nil {
					t.Errorf("step %d: %v", step, err)
					return
				}
			case 3:
				childRef := ref.fork()
				childOps := rng.Intn(10) + 2
				_, err := k.Fork(p, func(c *kernel.Proc) {
					for i := 0; i < childOps; i++ {
						if rng.Intn(2) == 0 {
							if err := mutate(c, childRef); err != nil {
								t.Errorf("child mutate: %v", err)
								return
							}
						} else if err := verify(c, childRef, "child"); err != nil {
							t.Errorf("child step %d: %v", i, err)
							return
						}
					}
					if err := verify(c, childRef, "child-final"); err != nil {
						t.Error(err)
					}
				})
				if err != nil {
					t.Errorf("fork: %v", err)
					return
				}
				// Parent races ahead with more mutations while the child
				// still runs, then reaps.
				if err := mutate(p, ref); err != nil {
					t.Errorf("parent racing mutate: %v", err)
					return
				}
				if _, _, err := k.Wait(p); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}
		if err := verify(p, ref, "parent-final"); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestDifferentialForkSemantics(t *testing.T) {
	for _, mode := range []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				differentialRound(t, seed, mode)
			}
		})
	}
}

// TestDifferentialAcrossEngines runs the same differential schedule on the
// posix baseline: fork transparency must hold identically there.
func TestDifferentialPosixBaseline(t *testing.T) {
	for seed := int64(100); seed <= 104; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		const heapBytes = 16 * 4096
		k := kernel.New(kernel.Config{
			Machine:   model.Posix(2),
			Engine:    posix.New(),
			Isolation: kernel.IsolationFull,
			Frames:    1 << 14,
		})
		spec := kernel.HelloWorldSpec()
		spec.HeapPages = heapBytes / kernel.PageSize
		if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
			ref := make([]byte, heapBytes)
			blob := make([]byte, 128)
			for i := 0; i < 10; i++ {
				off := uint64(rng.Intn(heapBytes - 128))
				rng.Read(blob)
				copy(ref[off:], blob)
				if err := p.Store(p.HeapCap, off, blob); err != nil {
					t.Error(err)
					return
				}
				childRef := append([]byte(nil), ref...)
				_, err := k.Fork(p, func(c *kernel.Proc) {
					got := make([]byte, heapBytes)
					if err := c.Load(c.HeapCap, 0, got); err != nil {
						t.Errorf("child load: %v", err)
						return
					}
					for j := range got {
						if got[j] != childRef[j] {
							t.Errorf("posix child diverged at %d", j)
							return
						}
					}
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, _, err := k.Wait(p); err != nil {
					t.Error(err)
					return
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
	}
}
