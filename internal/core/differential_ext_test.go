package core_test

// Extended differential schedules: pipes, signals, Sbrk, and nested forks
// of depth ≥ 3, each checked against a trivially correct reference model.
// These ride alongside differential_test.go's byte-array schedules and
// the chaos harness's fuzzed programs (internal/chaos): fixed, readable
// scenarios for the syscall surface the fuzzer exercises randomly.

import (
	"bytes"
	"math/rand"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

var extModes = []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull}

func extKernel(mode core.CopyMode, heapPages int) (*kernel.Kernel, kernel.ProgramSpec) {
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(mode),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 15,
	})
	spec := kernel.HelloWorldSpec()
	if heapPages > 0 {
		spec.HeapPages = heapPages
	}
	return k, spec
}

// TestDifferentialNestedFork forks to depth 3 (root → child → grandchild →
// great-grandchild), every level mutating its heap against a deep-copied
// reference while ancestors keep mutating concurrently. Verifies fork
// transparency composes: each level sees exactly its own fork-instant
// snapshot plus its own writes, never an ancestor's or descendant's.
func TestDifferentialNestedFork(t *testing.T) {
	const heapPages = 32
	const heapBytes = heapPages * kernel.PageSize
	for _, mode := range extModes {
		t.Run(mode.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				k, spec := extKernel(mode, heapPages)

				mutate := func(p *kernel.Proc, ref []byte) {
					off := uint64(rng.Intn(heapBytes - 64))
					blob := make([]byte, rng.Intn(64)+1)
					rng.Read(blob)
					copy(ref[off:], blob)
					if err := p.Store(p.HeapCap, off, blob); err != nil {
						t.Errorf("store: %v", err)
					}
				}
				verify := func(p *kernel.Proc, ref []byte, depth int) {
					got := make([]byte, heapBytes)
					if err := p.Load(p.HeapCap, 0, got); err != nil {
						t.Errorf("depth %d: load: %v", depth, err)
						return
					}
					if !bytes.Equal(got, ref) {
						i := 0
						for got[i] == ref[i] {
							i++
						}
						t.Errorf("seed %d depth %d: heap diverged at +%d: got %d want %d",
							seed, depth, i, got[i], ref[i])
					}
				}

				var level func(p *kernel.Proc, ref []byte, depth int)
				level = func(p *kernel.Proc, ref []byte, depth int) {
					for i := 0; i < 4; i++ {
						mutate(p, ref)
					}
					if depth < 3 {
						childRef := append([]byte(nil), ref...)
						if _, err := k.Fork(p, func(c *kernel.Proc) {
							level(c, childRef, depth+1)
						}); err != nil {
							t.Errorf("depth %d fork: %v", depth, err)
							return
						}
						// Keep scribbling while the descendant chain runs:
						// its snapshot must not see these.
						mutate(p, ref)
						mutate(p, ref)
						if _, _, err := k.Wait(p); err != nil {
							t.Errorf("depth %d wait: %v", depth, err)
							return
						}
					}
					verify(p, ref, depth)
				}

				if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
					level(p, make([]byte, heapBytes), 0)
				}); err != nil {
					t.Fatal(err)
				}
				k.Run()
			}
		})
	}
}

// TestDifferentialPipes checks pipe data integrity in-process and across
// fork: a child's writes arrive byte-exact at the parent, in order,
// across all copy modes (the pipe buffer lives in the kernel, not the
// forked image — fork must not duplicate or tear it).
func TestDifferentialPipes(t *testing.T) {
	for _, mode := range extModes {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			k, spec := extKernel(mode, 16)
			if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
				// In-process roundtrip.
				r, w, err := k.Pipe(p)
				if err != nil {
					t.Fatalf("pipe: %v", err)
				}
				blob := make([]byte, 4096)
				rng.Read(blob)
				if n, err := k.Write(p, w, blob); err != nil || n != len(blob) {
					t.Fatalf("write: n=%d err=%v", n, err)
				}
				got := make([]byte, len(blob))
				if n, err := k.Read(p, r, got); err != nil || n != len(got) {
					t.Fatalf("read: n=%d err=%v", n, err)
				}
				if !bytes.Equal(got, blob) {
					t.Fatal("in-process pipe roundtrip corrupted data")
				}

				// Across fork: three children, each writing a distinct drawn
				// blob; the parent reads them back in wait order.
				for i := 0; i < 3; i++ {
					msg := make([]byte, 1024+rng.Intn(4096))
					rng.Read(msg)
					if _, err := k.Fork(p, func(c *kernel.Proc) {
						if n, err := k.Write(c, w, msg); err != nil || n != len(msg) {
							t.Errorf("child %d write: n=%d err=%v", i, n, err)
						}
					}); err != nil {
						t.Fatalf("fork: %v", err)
					}
					if _, _, err := k.Wait(p); err != nil {
						t.Fatalf("wait: %v", err)
					}
					got := make([]byte, len(msg))
					if n, err := k.Read(p, r, got); err != nil || n != len(got) {
						t.Fatalf("parent read after child %d: n=%d err=%v", i, n, err)
					}
					if !bytes.Equal(got, msg) {
						t.Errorf("child %d's message corrupted across fork", i)
					}
				}
			}); err != nil {
				t.Fatal(err)
			}
			k.Run()
		})
	}
}

// TestDifferentialSbrk drives Sbrk with random deltas against the
// reference rule (brk may move anywhere up to the heap segment's page
// count) and checks the watermark is inherited by forked children but
// not shared with them afterward.
func TestDifferentialSbrk(t *testing.T) {
	const heapPages = 24
	for _, mode := range extModes {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			k, spec := extKernel(mode, heapPages)
			if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
				brk := p.BrkPages
				for i := 0; i < 200; i++ {
					delta := rng.Intn(9) - 4
					wantFail := brk+delta > heapPages
					err := k.Sbrk(p, delta)
					if wantFail != (err != nil) {
						t.Fatalf("op %d: sbrk(%d) at brk=%d: err=%v, reference predicts failure=%v",
							i, delta, brk, err, wantFail)
					}
					if err == nil {
						brk += delta
					}
					if p.BrkPages != brk {
						t.Fatalf("op %d: BrkPages=%d, reference=%d", i, p.BrkPages, brk)
					}
				}
				// Exact-limit edge: growing to precisely the segment size
				// succeeds, one page beyond fails.
				if err := k.Sbrk(p, heapPages-brk); err != nil {
					t.Fatalf("sbrk to exact limit: %v", err)
				}
				brk = heapPages
				if err := k.Sbrk(p, 1); err == nil {
					t.Fatal("sbrk past segment limit succeeded")
				}
				// Children inherit the watermark; their moves are private.
				if _, err := k.Fork(p, func(c *kernel.Proc) {
					if c.BrkPages != brk {
						t.Errorf("child inherited BrkPages=%d, want %d", c.BrkPages, brk)
					}
					if err := k.Sbrk(c, -5); err != nil {
						t.Errorf("child sbrk: %v", err)
					}
				}); err != nil {
					t.Fatalf("fork: %v", err)
				}
				if _, _, err := k.Wait(p); err != nil {
					t.Fatalf("wait: %v", err)
				}
				if p.BrkPages != brk {
					t.Fatalf("child's sbrk leaked into parent: BrkPages=%d, want %d", p.BrkPages, brk)
				}
			}); err != nil {
				t.Fatal(err)
			}
			k.Run()
		})
	}
}

// TestDifferentialSignals checks handler-delivery counting against a
// reference counter, that handlers do NOT survive fork (per-process
// kernel state is rebuilt fresh for the child), and the POSIX default
// actions: uncaught SIGUSR1 exits 128+10, uncaught SIGTERM 128+15,
// SIGKILL 137.
func TestDifferentialSignals(t *testing.T) {
	for _, mode := range extModes {
		t.Run(mode.String(), func(t *testing.T) {
			k, spec := extKernel(mode, 8)
			if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
				got, sent := 0, 0
				if err := k.Sigaction(p, kernel.SIGUSR1, func(*kernel.Proc, kernel.Signal) {
					got++
				}); err != nil {
					t.Fatalf("sigaction: %v", err)
				}
				for i := 0; i < 10; i++ {
					if err := k.SignalPID(p, p.PID, kernel.SIGUSR1); err != nil {
						t.Fatalf("self-signal: %v", err)
					}
					sent++
					if i%3 == 0 {
						k.Getpid(p) // kernel entry: flush deliveries
					}
				}
				k.Getpid(p)
				if got != sent {
					t.Fatalf("delivered %d of %d signals", got, sent)
				}

				// The child must not inherit the parent's handler: its
				// uncaught SIGUSR1 takes the POSIX default and terminates.
				for _, tc := range []struct {
					sig    kernel.Signal
					status int
				}{
					{kernel.SIGUSR1, 128 + 10},
					{kernel.SIGTERM, 128 + 15},
				} {
					if _, err := k.Fork(p, func(c *kernel.Proc) {
						if err := k.SignalPID(c, c.PID, tc.sig); err != nil {
							t.Errorf("child self-signal: %v", err)
						}
						k.Getpid(c) // delivery point: default action unwinds here
						t.Errorf("child survived uncaught signal %d", tc.sig)
					}); err != nil {
						t.Fatalf("fork: %v", err)
					}
					if _, status, err := k.Wait(p); err != nil || status != tc.status {
						t.Fatalf("wait after signal %d: status=%d err=%v, want %d",
							tc.sig, status, err, tc.status)
					}
				}

				// SIGKILL is uncatchable and lands at the victim's next entry.
				childPID, err := k.Fork(p, func(c *kernel.Proc) {
					if err := k.Sigaction(c, kernel.SIGKILL, func(*kernel.Proc, kernel.Signal) {}); err == nil {
						t.Error("SIGKILL handler registration succeeded")
					}
					for {
						k.Yield(c)
					}
				})
				if err != nil {
					t.Fatalf("fork: %v", err)
				}
				if err := k.SignalPID(p, childPID, kernel.SIGKILL); err != nil {
					t.Fatalf("kill: %v", err)
				}
				if _, status, err := k.Wait(p); err != nil || status != 137 {
					t.Fatalf("wait after SIGKILL: status=%d err=%v, want 137", status, err)
				}

				// Parent's own handler still armed and counting afterwards.
				if err := k.SignalPID(p, p.PID, kernel.SIGUSR1); err != nil {
					t.Fatalf("self-signal: %v", err)
				}
				k.Getpid(p)
				if got != sent+1 {
					t.Fatalf("handler lost after forks: delivered %d, want %d", got, sent+1)
				}
			}); err != nil {
				t.Fatal(err)
			}
			k.Run()
		})
	}
}
