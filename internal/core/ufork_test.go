package core_test

import (
	"errors"
	"testing"

	"ufork/internal/cap"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/vm"
)

func newKernel(mode core.CopyMode, iso kernel.IsolationLevel) *kernel.Kernel {
	return kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(mode),
		Isolation: iso,
		Frames:    1 << 16,
	})
}

// run spawns a single root process and drives the simulation.
func run(t *testing.T, k *kernel.Kernel, entry func(*kernel.Proc)) {
	t.Helper()
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, entry); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestChildGetsDistinctRegion(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {
			if c.Region.Base == p.Region.Base {
				t.Error("child must occupy a different region (single AS)")
			}
			if c.AS != p.AS {
				t.Error("child must share the single address space")
			}
			if !c.Region.Contains(c.DDC.Base()) || c.DDC.Top() > c.Region.Top() {
				t.Errorf("child DDC not confined to child region: %v", c.DDC)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestForkMemorySnapshot is the heart of fork transparency (R2): the child
// sees the parent's data as of the fork, and writes on either side are
// invisible to the other.
func TestForkMemorySnapshot(t *testing.T) {
	for _, mode := range []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull} {
		t.Run(mode.String(), func(t *testing.T) {
			k := newKernel(mode, kernel.IsolationFull)
			run(t, k, func(p *kernel.Proc) {
				if err := p.Store(p.HeapCap, 100, []byte("before-fork")); err != nil {
					t.Fatal(err)
				}
				_, err := k.Fork(p, func(c *kernel.Proc) {
					buf := make([]byte, 11)
					if err := c.Load(c.HeapCap, 100, buf); err != nil {
						t.Errorf("child load: %v", err)
						return
					}
					if string(buf) != "before-fork" {
						t.Errorf("child sees %q, want parent's pre-fork data", buf)
					}
					// Child write must not leak to the parent.
					if err := c.Store(c.HeapCap, 100, []byte("child-write")); err != nil {
						t.Errorf("child store: %v", err)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := k.Wait(p); err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, 11)
				if err := p.Load(p.HeapCap, 100, buf); err != nil {
					t.Fatal(err)
				}
				if string(buf) != "before-fork" {
					t.Errorf("parent sees %q: child write leaked", buf)
				}
			})
		})
	}
}

func TestParentWritesInvisibleToChild(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		if err := p.Store(p.HeapCap, 0, []byte("original")); err != nil {
			t.Fatal(err)
		}
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			// Wait for the parent's signal that it has overwritten.
			buf := make([]byte, 1)
			if _, err := k.Read(c, rfd, buf); err != nil {
				t.Errorf("child pipe read: %v", err)
			}
			got := make([]byte, 8)
			if err := c.Load(c.HeapCap, 0, got); err != nil {
				t.Errorf("child load: %v", err)
				return
			}
			if string(got) != "original" {
				t.Errorf("child sees %q: parent post-fork write leaked into snapshot", got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Store(p.HeapCap, 0, []byte("MUTATED!")); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, wfd, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPointerRelocation stores a pointer chain in the parent heap and
// checks the child observes a fully relocated chain confined to its own
// region (§3.4 building block 3).
func TestPointerRelocation(t *testing.T) {
	for _, mode := range []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull} {
		t.Run(mode.String(), func(t *testing.T) {
			k := newKernel(mode, kernel.IsolationFull)
			run(t, k, func(p *kernel.Proc) {
				// parent heap: node A at 0 holds {value, ptr -> node B at 4096};
				// node B holds a value.
				nodeB, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 4096).SetBounds(64)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Store(nodeB, 0, []byte("node-B-data")); err != nil {
					t.Fatal(err)
				}
				if err := p.StoreCap(p.HeapCap, 16, nodeB); err != nil {
					t.Fatal(err)
				}
				_, err = k.Fork(p, func(c *kernel.Proc) {
					ptr, err := c.LoadCap(c.HeapCap, 16)
					if err != nil {
						t.Errorf("child pointer load: %v", err)
						return
					}
					if !ptr.Tag() {
						t.Error("relocated pointer lost its tag")
						return
					}
					if !c.Region.Contains(ptr.Addr()) {
						t.Errorf("pointer still targets parent region: %v", ptr)
						return
					}
					if ptr.Base() < c.Region.Base || ptr.Top() > c.Region.Top() {
						t.Errorf("pointer bounds escape child region: %v", ptr)
						return
					}
					// Dereference the relocated pointer: must read node B's data
					// at the child's copy.
					buf := make([]byte, 11)
					if err := c.Load(ptr, 0, buf); err != nil {
						t.Errorf("deref relocated pointer: %v", err)
						return
					}
					if string(buf) != "node-B-data" {
						t.Errorf("relocated deref = %q", buf)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := k.Wait(p); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestGOTRelocatedEagerly: immediately after fork — before any fault — the
// child's GOT must already point into the child region (§3.7).
func TestGOTRelocatedEagerly(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {
			for i := 0; i < c.Spec.GOTEntries; i++ {
				g, err := c.GOTLoad(i)
				if err != nil {
					t.Errorf("child GOT[%d]: %v", i, err)
					return
				}
				if !c.Region.Contains(g.Addr()) {
					t.Errorf("child GOT[%d] points at %#x outside child region", i, g.Addr())
					return
				}
			}
			// The proactive copy means no fault was needed: the GOT pages
			// must not be in the pending set.
			gotBase := c.Layout.SegBase(c.Region.Base, kernel.SegGOT)
			for pg := 0; pg < c.Layout.Pages[kernel.SegGOT]; pg++ {
				if c.Pending.Contains(vm.VPNOf(gotBase + uint64(pg)*vm.PageSize)) {
					t.Error("GOT page left pending: must be proactively relocated")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRegisterRelocation: capabilities stashed in the register file are
// relocated at fork (§3.5 step 2), and integers are left alone.
func TestRegisterRelocation(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		if err := p.Store(p.HeapCap, 256, []byte("reg-target")); err != nil {
			t.Fatal(err)
		}
		ptr, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 256).SetBounds(32)
		if err != nil {
			t.Fatal(err)
		}
		p.Regs[3] = ptr
		p.Regs[4] = cap.Null().SetAddr(12345) // an integer, untagged
		_, err = k.Fork(p, func(c *kernel.Proc) {
			r := c.Regs[3]
			if !r.Tag() || !c.Region.Contains(r.Addr()) {
				t.Errorf("register cap not relocated: %v", r)
				return
			}
			buf := make([]byte, 10)
			if err := c.Load(r, 0, buf); err != nil {
				t.Errorf("deref relocated register: %v", err)
				return
			}
			if string(buf) != "reg-target" {
				t.Errorf("register deref = %q", buf)
			}
			if c.Regs[4].Tag() || c.Regs[4].Addr() != 12345 {
				t.Errorf("integer register modified: %v", c.Regs[4])
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCoPASharesDataPages: under CoPA a child that only performs plain
// (non-capability) reads never copies those pages (§3.8); under CoA the
// same reads copy every touched page. This is the mechanism behind the
// 6 MB vs 101 MB result of Fig. 5.
func TestCoPASharesDataPages(t *testing.T) {
	touched := func(mode core.CopyMode) (privatePages int) {
		k := newKernel(mode, kernel.IsolationFull)
		run(t, k, func(p *kernel.Proc) {
			// Fill 16 heap pages with plain data.
			blob := make([]byte, 16*vm.PageSize)
			for i := range blob {
				blob[i] = byte(i)
			}
			if err := p.Store(p.HeapCap, 0, blob); err != nil {
				t.Fatal(err)
			}
			_, err := k.Fork(p, func(c *kernel.Proc) {
				got := make([]byte, 16*vm.PageSize)
				if err := c.Load(c.HeapCap, 0, got); err != nil {
					t.Errorf("child read: %v", err)
					return
				}
				for i := 0; i < len(got); i += vm.PageSize {
					if got[i] != byte(i) {
						t.Errorf("byte %d = %d", i, got[i])
						return
					}
				}
				u := c.Usage()
				privatePages = u.PrivatePages
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		})
		return privatePages
	}
	copa := touched(core.CopyOnPointerAccess)
	coa := touched(core.CopyOnAccess)
	if copa >= coa {
		t.Fatalf("CoPA private pages (%d) must be fewer than CoA (%d)", copa, coa)
	}
	// CoA must have copied at least the 16 data pages.
	if coa < 16 {
		t.Fatalf("CoA copied only %d pages", coa)
	}
}

// TestCoPACopiesOnPointerLoad: loading a capability from a shared page
// must trigger the copy + relocation (Fig. 2, case B).
func TestCoPACopiesOnPointerLoad(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		target, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 8192).SetBounds(16)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StoreCap(p.HeapCap, 0, target); err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			before := c.AS.Stats.Fault(vm.FaultCapLoad)
			if _, err := c.LoadCap(c.HeapCap, 0); err != nil {
				t.Errorf("child cap load: %v", err)
				return
			}
			after := c.AS.Stats.Fault(vm.FaultCapLoad)
			if after != before+1 {
				t.Errorf("cap-load faults: %d -> %d, want exactly one", before, after)
			}
			// The page is now private; a second load takes no fault.
			if _, err := c.LoadCap(c.HeapCap, 0); err != nil {
				t.Errorf("second cap load: %v", err)
			}
			if got := c.AS.Stats.Fault(vm.FaultCapLoad); got != after {
				t.Errorf("second load faulted: %d -> %d", after, got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestNoParentCapabilityLeaks scans every frame mapped by the child after
// a workload and asserts no reachable capability grants access outside the
// child's region — the §4.2/§4.3 security invariant.
func TestNoParentCapabilityLeaks(t *testing.T) {
	for _, mode := range []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull} {
		t.Run(mode.String(), func(t *testing.T) {
			k := newKernel(mode, kernel.IsolationFull)
			run(t, k, func(p *kernel.Proc) {
				// Build a small object graph in the parent.
				for i := 0; i < 8; i++ {
					tgt, err := p.HeapCap.SetAddr(p.HeapCap.Base() + uint64(i+1)*512).SetBounds(128)
					if err != nil {
						t.Fatal(err)
					}
					if err := p.StoreCap(p.HeapCap, uint64(i)*32, tgt); err != nil {
						t.Fatal(err)
					}
				}
				_, err := k.Fork(p, func(c *kernel.Proc) {
					// Touch everything: load all pointers, write some data.
					for i := 0; i < 8; i++ {
						if _, err := c.LoadCap(c.HeapCap, uint64(i)*32); err != nil {
							t.Errorf("cap load %d: %v", i, err)
							return
						}
					}
					if err := c.Store(c.StackCap, 0, []byte("x")); err != nil {
						t.Errorf("stack write: %v", err)
					}
					// Now audit: every tagged capability in every frame the
					// child has PRIVATIZED must be confined to the child.
					// (Shared frames still hold parent-valid caps, but the
					// LC-fault bit guards them: loading one triggers the copy.)
					c.AS.RangeVPNs(vm.VPNOf(c.Region.Base), vm.VPNOf(c.Region.Top()-1)+1,
						func(vpn vm.VPN, pte *vm.PTE) {
							if pte.Page.Refs != 1 {
								return // still shared: protected by CoPA barrier
							}
							if c.Pending.Contains(vpn) {
								return // not yet relocated, also not yet readable as caps
							}
							err := k.Mem.ForEachTagged(pte.Page.PFN, func(off uint64) error {
								cp, err := k.Mem.LoadCap(pte.Page.PFN, off)
								if err != nil {
									t.Errorf("load: %v", err)
									return nil
								}
								if cp.IsSealed() {
									return nil // kernel entry sentry
								}
								if cp.Base() < c.Region.Base || cp.Top() > c.Region.Top() {
									t.Errorf("leaked capability at vpn %#x+%d: %v", uint64(vpn), off, cp)
								}
								return nil
							})
							if err != nil {
								t.Errorf("scan: %v", err)
							}
						})
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := k.Wait(p); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestGrandchildRelocation forks a child that forks again, with a pointer
// the intermediate generation never touched: the grandchild must still see
// a correctly relocated pointer (ancestor-region relocation).
func TestGrandchildRelocation(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	run(t, k, func(p *kernel.Proc) {
		tgt, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 3*4096).SetBounds(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Store(tgt, 0, []byte("deep-data")); err != nil {
			t.Fatal(err)
		}
		if err := p.StoreCap(p.HeapCap, 48, tgt); err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			// The child does NOT touch the pointer page; forks again.
			_, err := k.Fork(c, func(g *kernel.Proc) {
				ptr, err := g.LoadCap(g.HeapCap, 48)
				if err != nil {
					t.Errorf("grandchild cap load: %v", err)
					return
				}
				if !g.Region.Contains(ptr.Addr()) {
					t.Errorf("grandchild pointer not in own region: %v", ptr)
					return
				}
				buf := make([]byte, 9)
				if err := g.Load(ptr, 0, buf); err != nil {
					t.Errorf("grandchild deref: %v", err)
					return
				}
				if string(buf) != "deep-data" {
					t.Errorf("grandchild deref = %q", buf)
				}
			})
			if err != nil {
				t.Errorf("child fork: %v", err)
				return
			}
			if _, _, err := k.Wait(c); err != nil {
				t.Errorf("child wait: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

// TestForkLatencyOrdering: CopyFull must be far slower than CoA/CoPA, and
// CoPA at most as slow as CoA (Fig. 4's ordering).
func TestForkLatencyOrdering(t *testing.T) {
	latency := func(mode core.CopyMode) (lat uint64) {
		k := newKernel(mode, kernel.IsolationFull)
		spec := kernel.HelloWorldSpec()
		spec.HeapPages = 2048 // a sizeable image so the full copy dominates
		if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
			// Dirty some pages so there is something to copy.
			blob := make([]byte, 32*vm.PageSize)
			if err := p.Store(p.HeapCap, 0, blob); err != nil {
				t.Fatal(err)
			}
			_, err := k.Fork(p, func(c *kernel.Proc) {})
			if err != nil {
				t.Fatal(err)
			}
			lat = uint64(p.LastFork.Latency)
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return lat
	}
	full := latency(core.CopyFull)
	coa := latency(core.CopyOnAccess)
	copa := latency(core.CopyOnPointerAccess)
	if full <= coa*2 {
		t.Fatalf("full copy (%d) should dwarf CoA (%d)", full, coa)
	}
	if copa > coa {
		t.Fatalf("CoPA fork latency (%d) must not exceed CoA (%d)", copa, coa)
	}
}

// TestIsolationNoneWideCaps: with isolation disabled the DDC spans memory
// and cross-region loads don't capability-fault (R4).
func TestIsolationNoneWideCaps(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationNone)
	run(t, k, func(p *kernel.Proc) {
		if p.DDC.Len() != ^uint64(0) {
			t.Fatalf("IsolationNone should issue an all-memory DDC, got %v", p.DDC)
		}
	})
}

// TestSegfaultOutsideRegion: an access far outside any mapping is a clean
// error, not a panic.
func TestSegfaultOutsideRegion(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationNone)
	run(t, k, func(p *kernel.Proc) {
		wild := p.DDC.SetAddr(1 << 60)
		err := p.Load(wild, 0, make([]byte, 8))
		if !errors.Is(err, kernel.ErrSegfault) {
			t.Fatalf("wild load: got %v, want segfault", err)
		}
	})
}

// TestRepeatedForks exercises the zygote pattern: one parent forking many
// children sequentially, each child touching memory.
func TestRepeatedForks(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	const n = 20
	seen := map[kernel.PID]bool{}
	liveFrames := 0
	run(t, k, func(p *kernel.Proc) {
		defer func() { liveFrames = k.Mem.Allocated() }()
		if err := p.Store(p.HeapCap, 0, []byte("zygote-state")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) {
				buf := make([]byte, 12)
				if err := c.Load(c.HeapCap, 0, buf); err != nil {
					t.Errorf("child %d load: %v", c.PID, err)
					return
				}
				if string(buf) != "zygote-state" {
					t.Errorf("child %d sees %q", c.PID, buf)
				}
				if err := c.Store(c.HeapCap, 4096, []byte("scratch")); err != nil {
					t.Errorf("child %d store: %v", c.PID, err)
				}
				seen[k.Getpid(c)] = true
			})
			if err != nil {
				t.Fatalf("fork %d: %v", i, err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatalf("wait %d: %v", i, err)
			}
		}
	})
	if len(seen) != n {
		t.Fatalf("saw %d children, want %d", len(seen), n)
	}
	if liveFrames == 0 {
		t.Fatal("expected live frames while the parent still ran")
	}
}

// TestFrameReclamation: after all children exit, the only frames left are
// the root's.
func TestFrameReclamation(t *testing.T) {
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	var before, after int
	run(t, k, func(p *kernel.Proc) {
		blob := make([]byte, 8*vm.PageSize)
		if err := p.Store(p.HeapCap, 0, blob); err != nil {
			t.Fatal(err)
		}
		before = k.Mem.Allocated()
		for i := 0; i < 5; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) {
				if err := c.Store(c.HeapCap, 0, []byte("dirty")); err != nil {
					t.Errorf("child store: %v", err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
		after = k.Mem.Allocated()
	})
	if after != before {
		t.Fatalf("frames leaked: %d before, %d after forks", before, after)
	}
}

// TestRodataCapsRelocatedOnRead covers Fig. 1's "code and read-only data"
// case: a static pointer table in rodata is relocated when the child loads
// from it.
func TestRodataCapsRelocatedOnRead(t *testing.T) {
	spec := kernel.HelloWorldSpec()
	spec.RodataCapsPerPage = 4
	k := newKernel(core.CopyOnPointerAccess, kernel.IsolationFull)
	if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
		roCap := p.SegCap(kernel.SegRodata).WithPerms(cap.PermRO)
		_, err := k.Fork(p, func(c *kernel.Proc) {
			croCap := c.SegCap(kernel.SegRodata).WithPerms(cap.PermRO)
			ptr, err := c.LoadCap(croCap, 0)
			if err != nil {
				t.Errorf("rodata cap load: %v", err)
				return
			}
			if !c.Region.Contains(ptr.Addr()) {
				t.Errorf("rodata pointer not relocated: %v", ptr)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Parent's rodata pointer still points into the parent.
		ptr, err := p.LoadCap(roCap, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Region.Contains(ptr.Addr()) {
			t.Errorf("parent rodata pointer moved: %v", ptr)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}
