package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The eager copy+relocate work of a fork — CopyFull's whole-image copy and
// the proactive GOT/allocator-metadata/stack segments of the lazy modes —
// is embarrassingly parallel on the host: each page gets a private
// destination frame, and frames never alias. A bounded worker pool fans
// that work across goroutines. Virtual-time cost accounting stays on the
// forking task and is computed from per-page counts whose sums are
// order-independent, so every virtual-time output is bit-identical
// whatever the parallelism (see TestParallelForkDeterministic).

// workers resolves the engine's host-side fan-out width: Parallelism when
// set, else one worker per available CPU.
func (e *Engine) workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// parallelChunk is the number of consecutive pages one worker claims at a
// time: large enough to amortise the atomic claim against ~500 ns of
// per-page copy work, small enough to balance tails.
const parallelChunk = 16

// parallelFor runs fn(i) for every i in [0, n) across at most w
// goroutines, returning when all calls have completed. With w <= 1 (or
// trivially small n) it runs inline on the caller.
func parallelFor(n, w int, fn func(int)) {
	if w > (n+parallelChunk-1)/parallelChunk {
		w = (n + parallelChunk - 1) / parallelChunk
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(parallelChunk)) - parallelChunk
				if start >= n {
					return
				}
				end := start + parallelChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
