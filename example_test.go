package ufork_test

import (
	"fmt"

	"ufork"
)

// ExampleNewSystem demonstrates the core μFork flow: a parent stores data
// and a pointer in simulated memory, forks, and the child observes a
// relocated snapshot in its own region of the single address space.
func ExampleNewSystem() {
	sys := ufork.NewSystem(ufork.Options{Strategy: ufork.CoPA, Cores: 2})
	if _, err := sys.Main(func(p *ufork.Proc) {
		k := p.Kernel()
		if err := p.Store(p.HeapCap, 0, []byte("snapshot")); err != nil {
			panic(err)
		}
		if _, err := k.Fork(p, func(c *ufork.Proc) {
			buf := make([]byte, 8)
			if err := c.Load(c.HeapCap, 0, buf); err != nil {
				panic(err)
			}
			fmt.Printf("child sees %q in its own region: %v\n",
				buf, c.Region.Base != p.Region.Base)
		}); err != nil {
			panic(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			panic(err)
		}
	}); err != nil {
		panic(err)
	}
	sys.Run()
	// Output: child sees "snapshot" in its own region: true
}
