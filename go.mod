module ufork

go 1.22
