// Package ufork is a faithful, fully simulated reproduction of
// "μFork: Supporting POSIX fork Within a Single-Address-Space OS"
// (Kressel, Lefeuvre, Olivier — SOSP 2025).
//
// It provides POSIX fork inside a single-address-space operating system:
// each child μprocess receives a fresh contiguous region of the shared
// virtual address space, tagged-memory scans relocate every absolute
// memory reference (CHERI capability) into the child's region, and
// Copy-on-Pointer-Access (CoPA) lets parent and child share pages until a
// write — or a child pointer load — forces a private, relocated copy.
//
// Because Go cannot execute CHERI instructions or run at EL1, the hardware
// (capabilities, tagged DRAM, page tables with a fault-on-capability-load
// bit) and the SASOS kernel are simulated deterministically in virtual
// time; see DESIGN.md for the substitution table and internal/model for
// every calibrated cost constant.
//
// # Quick start
//
//	sys := ufork.NewSystem(ufork.Options{})
//	sys.Main(func(p *ufork.Proc) {
//		k := p.Kernel()
//		pid, _ := k.Fork(p, func(child *ufork.Proc) {
//			// The child sees a relocated copy of the parent's memory.
//		})
//		k.Wait(p)
//		_ = pid
//	})
//	sys.Run()
//
// The three baseline-comparison engines (classic multi-address-space CoW
// fork and whole-VM cloning) and the full experiment harness live under
// internal/; the `ufork-bench` command regenerates every figure of the
// paper's evaluation.
package ufork

import (
	"ufork/internal/baseline/posix"
	"ufork/internal/baseline/vmclone"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/sim"
)

// Re-exported kernel types: the public API surface examples and embedders
// program against.
type (
	// Proc is a μprocess handle.
	Proc = kernel.Proc
	// Kernel is the simulated operating system instance.
	Kernel = kernel.Kernel
	// PID identifies a μprocess.
	PID = kernel.PID
	// ProgramSpec describes a program image's segment sizes.
	ProgramSpec = kernel.ProgramSpec
	// ForkStats reports the work one fork performed.
	ForkStats = kernel.ForkStats
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// CopyStrategy selects μFork's state-transfer strategy (§3.8).
type CopyStrategy = core.CopyMode

// Copy strategies.
const (
	// CoPA is Copy-on-Pointer-Access, the paper's headline strategy.
	CoPA = core.CopyOnPointerAccess
	// CoA is Copy-on-Access, for hardware without a capability-load
	// fault bit.
	CoA = core.CopyOnAccess
	// FullCopy synchronously copies the whole parent image at fork.
	FullCopy = core.CopyFull
)

// IsolationLevel selects how much of the POSIX trust model is enforced
// (§3.6, R4).
type IsolationLevel = kernel.IsolationLevel

// Isolation levels.
const (
	// IsolationNone trusts everything (e.g. Redis snapshotting).
	IsolationNone = kernel.IsolationNone
	// IsolationFault provides non-adversarial fault isolation (e.g.
	// Nginx workers).
	IsolationFault = kernel.IsolationFault
	// IsolationFull is the adversarial POSIX model with TOCTTOU copies
	// (e.g. privilege separation).
	IsolationFull = kernel.IsolationFull
)

// Baseline selects which system a System models.
type Baseline int

// Baselines.
const (
	// BaselineUFork is μFork itself (default).
	BaselineUFork Baseline = iota
	// BaselinePosix is the monolithic multi-address-space CoW fork
	// (CheriBSD-like).
	BaselinePosix
	// BaselineVMClone is hypervisor whole-VM cloning (Nephele-like).
	BaselineVMClone
)

// Options configures a System. The zero value is μFork with CoPA, full
// isolation, one core and a default physical memory size.
type Options struct {
	// Baseline selects the system under test.
	Baseline Baseline
	// Strategy selects the μFork copy strategy (ignored by baselines).
	Strategy CopyStrategy
	// Isolation selects the enforced trust model.
	Isolation IsolationLevel
	// Cores is the simulated CPU count (default 1).
	Cores int
	// Frames is physical memory in 4 KiB frames (default 2 GiB).
	Frames int
	// Spec overrides the root program image (default HelloWorldSpec).
	Spec *ProgramSpec
}

// System is a booted simulated machine plus its kernel.
type System struct {
	// K is the kernel; all syscalls hang off it.
	K *Kernel

	spec ProgramSpec
}

// NewSystem boots a system according to opts.
func NewSystem(opts Options) *System {
	cores := opts.Cores
	if cores < 1 {
		cores = 1
	}
	iso := opts.Isolation
	if iso == 0 && opts.Baseline == BaselineUFork {
		iso = IsolationFull
	}
	var (
		m   *model.Machine
		eng kernel.ForkEngine
	)
	switch opts.Baseline {
	case BaselinePosix:
		m, eng = model.Posix(cores), posix.New()
	case BaselineVMClone:
		m, eng = model.VMClone(cores), vmclone.New()
	default:
		m, eng = model.UFork(cores), core.New(opts.Strategy)
	}
	k := kernel.New(kernel.Config{
		Machine:   m,
		Engine:    eng,
		Isolation: iso,
		Frames:    opts.Frames,
	})
	spec := kernel.HelloWorldSpec()
	if opts.Spec != nil {
		spec = *opts.Spec
	}
	return &System{K: k, spec: spec}
}

// Main registers the root μprocess's entry function. Call Run afterwards
// to execute the simulation.
func (s *System) Main(entry func(*Proc)) (*Proc, error) {
	return s.K.Spawn(s.spec, 0, entry)
}

// Spawn loads an additional program image as a fresh μprocess.
func (s *System) Spawn(spec ProgramSpec, entry func(*Proc)) (*Proc, error) {
	return s.K.Spawn(spec, 0, entry)
}

// Run drives the simulation until every μprocess has exited.
func (s *System) Run() { s.K.Run() }

// HelloWorldSpec returns the minimal program image used by the
// microbenchmarks.
func HelloWorldSpec() ProgramSpec { return kernel.HelloWorldSpec() }
