package ufork_test

import (
	"testing"

	"ufork"
)

func TestQuickstartFlow(t *testing.T) {
	sys := ufork.NewSystem(ufork.Options{Strategy: ufork.CoPA, Cores: 2})
	var childSawSnapshot bool
	if _, err := sys.Main(func(p *ufork.Proc) {
		k := p.Kernel()
		if err := p.Store(p.HeapCap, 0, []byte("state")); err != nil {
			t.Errorf("store: %v", err)
			return
		}
		pid, err := k.Fork(p, func(c *ufork.Proc) {
			buf := make([]byte, 5)
			if err := c.Load(c.HeapCap, 0, buf); err != nil {
				t.Errorf("child load: %v", err)
				return
			}
			childSawSnapshot = string(buf) == "state"
		})
		if err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		if pid == p.PID {
			t.Error("child PID must differ")
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if !childSawSnapshot {
		t.Fatal("child did not observe the parent's snapshot")
	}
}

func TestBaselinesBoot(t *testing.T) {
	for _, b := range []ufork.Baseline{ufork.BaselineUFork, ufork.BaselinePosix, ufork.BaselineVMClone} {
		sys := ufork.NewSystem(ufork.Options{Baseline: b, Isolation: ufork.IsolationFull})
		ran := false
		if _, err := sys.Main(func(p *ufork.Proc) {
			k := p.Kernel()
			if _, err := k.Fork(p, func(c *ufork.Proc) {}); err != nil {
				t.Errorf("baseline %d fork: %v", b, err)
				return
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Errorf("baseline %d wait: %v", b, err)
				return
			}
			ran = true
		}); err != nil {
			t.Fatal(err)
		}
		sys.Run()
		if !ran {
			t.Fatalf("baseline %d did not run", b)
		}
	}
}

func TestCopyStrategies(t *testing.T) {
	for _, s := range []ufork.CopyStrategy{ufork.CoPA, ufork.CoA, ufork.FullCopy} {
		sys := ufork.NewSystem(ufork.Options{Strategy: s})
		if _, err := sys.Main(func(p *ufork.Proc) {
			k := p.Kernel()
			if err := p.Store(p.HeapCap, 0, []byte{1, 2, 3}); err != nil {
				t.Error(err)
				return
			}
			if _, err := k.Fork(p, func(c *ufork.Proc) {
				buf := make([]byte, 3)
				if err := c.Load(c.HeapCap, 0, buf); err != nil {
					t.Errorf("strategy %v child load: %v", s, err)
				}
			}); err != nil {
				t.Errorf("strategy %v fork: %v", s, err)
				return
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		sys.Run()
	}
}
