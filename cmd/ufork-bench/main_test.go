package main

import (
	"strings"
	"testing"
)

// TestRegistryIntegrity pins the single-source-of-truth property: every
// experiment has a unique name (and unique aliases), a runner, and a
// synopsis; the generated usage and list texts mention every one; and
// the explicit-only set is exactly the robustness harnesses.
func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	usage, list := expUsage(), expList()
	var explicit []string
	for _, e := range experiments {
		if e.name == "" || e.name == "all" || e.name == "list" {
			t.Errorf("experiment name %q is empty or reserved", e.name)
		}
		for _, n := range append([]string{e.name}, e.aliases...) {
			if seen[n] {
				t.Errorf("duplicate experiment name/alias %q", n)
			}
			seen[n] = true
			if got, ok := findExperiment(n); !ok || got.name != e.name {
				t.Errorf("findExperiment(%q) does not resolve to %q", n, e.name)
			}
			if !strings.Contains(usage, n) {
				t.Errorf("generated usage omits %q:\n%s", n, usage)
			}
			if !strings.Contains(list, n) {
				t.Errorf("-exp list omits %q:\n%s", n, list)
			}
		}
		if e.run == nil {
			t.Errorf("experiment %q has no runner", e.name)
		}
		if e.synopsis == "" {
			t.Errorf("experiment %q has no synopsis", e.name)
		}
		if !strings.Contains(list, e.synopsis) {
			t.Errorf("-exp list omits synopsis of %q", e.name)
		}
		if e.explicit {
			explicit = append(explicit, e.name)
		}
	}
	if got, want := strings.Join(explicit, ","), "stress,ycsb,profdiff"; got != want {
		t.Errorf("explicit-only set = %s, want %s", got, want)
	}
	if _, ok := findExperiment("nonsense"); ok {
		t.Error("findExperiment accepted an unknown name")
	}
}

// TestRegistryRunsQuickExperiment smoke-runs one cheap registry entry
// through the same path main dispatches.
func TestRegistryRunsQuickExperiment(t *testing.T) {
	e, ok := findExperiment("table1")
	if !ok {
		t.Fatal("table1 missing from registry")
	}
	if err := e.run(&runCfg{coresFlag: "1", mixFlag: "A", locksFlag: "bkl,smp"}); err != nil {
		t.Fatal(err)
	}
}
