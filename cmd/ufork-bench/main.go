// Command ufork-bench regenerates the paper's evaluation tables and
// figures on the simulated systems.
//
// Usage:
//
//	ufork-bench [-exp <experiment>] [-full] [-trace out.json] [-metrics out.json]
//	            [-profile out.folded] [-parallel N] [-seed N] [-cores 1,2,4,8]
//	            [-serve addr] [-check-scaling] [-mix A,B,C] [-ops N] [-keys N]
//	            [-locks bkl,smp] [-chaos] [-slo spec]
//
// The experiment set is defined by a single registry (see experiments
// below); `-exp all` runs every non-explicit entry, and the synopsis of
// each experiment is printed by `-exp list`.
//
// Quick mode (default) uses reduced database sizes, windows and iteration
// counts; -full runs the paper's parameters (100 MB databases, 1000
// spawns, 100k pipe exchanges, second-long throughput windows).
//
// -trace enables the observability layer and writes a Chrome trace_event
// JSON of every kernel the run boots (open in chrome://tracing or
// Perfetto). -metrics enables it too and writes a JSON snapshot of the
// aggregated counters and latency histograms next to the rendered tables.
//
// -profile arms the virtual-time sampling profiler on every kernel the
// run boots and writes the aggregate folded-stack profile (flamegraph.pl
// input) to the given file at exit. With -serve, the same plane also
// serves /profile live.
//
// -serve starts the live telemetry plane (Prometheus /metrics, JSON
// /procs of the currently booted kernel, /flight dumps, /profile, pprof)
// and keeps serving after the experiments finish so the final state can
// be scraped; interrupt to exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ufork/internal/bench"
	"ufork/internal/bench/ycsb"
	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/profile"
	"ufork/internal/sim"
	"ufork/internal/telemetry"
)

// runCfg carries the parsed flag state every experiment runs against.
type runCfg struct {
	full         bool
	seed         int64
	coresFlag    string
	checkScaling bool
	mixFlag      string
	opsFlag      int
	keysFlag     int
	locksFlag    string
	chaosFlag    bool
	sloFlag      string
}

// experiment is one -exp entry. Everything the command knows about an
// experiment — its name, its aliases, whether "all" includes it, and how
// to run it — lives in this registry, and the usage text is generated
// from it, so the dispatched set and the documented set cannot drift.
type experiment struct {
	name     string
	aliases  []string
	synopsis string
	// explicit experiments never run under -exp all: they are robustness
	// harnesses or cross-run studies, not paper tables.
	explicit bool
	run      func(c *runCfg) error
}

// experiments is the registry. Order is the -exp all execution order.
var experiments = []experiment{
	{
		name:     "table1",
		synopsis: "design-space taxonomy of SASOS fork systems (paper Table 1)",
		run: func(c *runCfg) error {
			fmt.Println(bench.RenderTable1(bench.Table1()))
			return nil
		},
	},
	{
		name:     "fig3",
		aliases:  []string{"fig4", "fig5", "ablation", "tocttou"},
		synopsis: "Redis BGSAVE sweep: fork latency, tail impact, copy-mode ablation",
		run: func(c *runCfg) error {
			sizes := bench.RedisSizesQuick
			if c.full {
				sizes = bench.RedisSizesFull
			}
			rows, err := bench.RedisSweep(sizes)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderRedis(rows))
			fmt.Println(bench.RenderAblation(rows))
			return nil
		},
	},
	{
		name:     "fig6",
		synopsis: "FaaS cold-start throughput window",
		run: func(c *runCfg) error {
			window := 200 * sim.Millisecond
			if c.full {
				window = sim.Second
			}
			rows, err := bench.FaaSSweep(window)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFaaS(rows))
			return nil
		},
	},
	{
		name:     "fig7",
		synopsis: "Nginx worker-fleet throughput window",
		run: func(c *runCfg) error {
			window := 50 * sim.Millisecond
			if c.full {
				window = 250 * sim.Millisecond
			}
			rows, err := bench.NginxSweep(window)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderNginx(rows))
			return nil
		},
	},
	{
		name:     "fig8",
		synopsis: "hello-world fork+exit end-to-end latency",
		run: func(c *runCfg) error {
			rows, err := bench.HelloWorld()
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderHello(rows))
			return nil
		},
	},
	{
		name:     "fig9",
		synopsis: "Unixbench spawn and context-switch microbenchmarks",
		run: func(c *runCfg) error {
			spawnIters := bench.SpawnItersQuick
			ctx1 := uint64(bench.Context1TargetQuik)
			if c.full {
				spawnIters = bench.SpawnItersFull
				ctx1 = bench.Context1TargetFull
			}
			rows, err := bench.Unixbench(spawnIters, ctx1)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderUnixbench(rows))
			return nil
		},
	},
	{
		name:     "forkserver",
		synopsis: "pre-fork server pool latency sweep",
		run: func(c *runCfg) error {
			n := 40
			if c.full {
				n = 200
			}
			rows, err := bench.ForkServerSweep(n)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderForkServer(rows))
			return nil
		},
	},
	{
		name:     "forkhist",
		synopsis: "fork-latency distribution across copy modes",
		run: func(c *runCfg) error {
			iters := bench.ForkHistItersQuick
			if c.full {
				iters = bench.ForkHistItersFull
			}
			rows, err := bench.ForkHist(iters)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderForkHist(rows))
			return nil
		},
	},
	{
		name:     "contention",
		synopsis: "BKL vs split-lock multicore scaling sweep (-cores, -check-scaling)",
		run: func(c *runCfg) error {
			window := sim.Time(bench.ContentionWindowQuick)
			if c.full {
				window = bench.ContentionWindowFull
			}
			cores, err := parseCores(c.coresFlag)
			if err != nil {
				return err
			}
			rows, err := bench.ContentionSweep(window, cores)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderContention(rows))
			if c.checkScaling {
				if err := bench.CheckContentionScaling(rows); err != nil {
					return err
				}
				fmt.Println("scaling gates passed: smp httpd >= 2x at 4 cores, residual share < 40%")
			}
			return nil
		},
	},
	{
		name:     "footprint",
		synopsis: "fork-chain RSS/PSS/USS decomposition across copy modes",
		run: func(c *runCfg) error {
			rows, err := bench.Footprint()
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFootprint(rows))
			return nil
		},
	},
	{
		name:     "stress",
		explicit: true,
		synopsis: "chaos soak: seeded random syscall programs under fault injection, with invariant audits and a syscall-latency SLO",
		run: func(c *runCfg) error {
			rounds, maxOps := 2, 2500
			if c.full {
				rounds, maxOps = 10, 8000
			}
			slo := bench.DefaultStressSLO()
			if c.sloFlag != "" {
				var err error
				slo, err = ycsb.ParseSLO(c.sloFlag)
				if err != nil {
					return err
				}
			}
			rows := bench.Stress(c.seed, rounds, maxOps)
			fmt.Println(bench.RenderStress(rows))
			if err := bench.StressFailures(rows); err != nil {
				return err
			}
			return bench.CheckStressSLO(rows, slo)
		},
	},
	{
		name:     "ycsb",
		explicit: true,
		synopsis: "YCSB load harness: A/B/C zipfian mixes vs kvstore+BGSAVE and httpd, per-cell latency SLOs (-mix, -ops, -keys, -locks, -chaos, -slo)",
		run: func(c *runCfg) error {
			opts, err := c.ycsbOpts()
			if err != nil {
				return err
			}
			rows, err := bench.YCSBSweep(opts)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderYCSB(rows))
			return bench.YCSBFailures(rows)
		},
	},
	{
		name:     "profdiff",
		explicit: true,
		synopsis: "cross-run profile diff: the same seeded YCSB coordinate profiled under bkl and smp, top signed per-stack virtual-time deltas",
		run: func(c *runCfg) error {
			keys, ops := c.keysFlag, c.opsFlag
			if c.full {
				if keys == 0 {
					keys = bench.YCSBKeysFull
				}
				if ops == 0 {
					ops = bench.YCSBOpsFull
				}
			}
			out, err := bench.ProfDiff(keys, ops)
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		},
	},
}

// ycsbOpts assembles the YCSB sweep options from the flag state.
func (c *runCfg) ycsbOpts() (bench.YCSBOpts, error) {
	mixes, err := parseMixes(c.mixFlag)
	if err != nil {
		return bench.YCSBOpts{}, err
	}
	cores, err := parseCores(c.coresFlag)
	if err != nil {
		return bench.YCSBOpts{}, err
	}
	opts := bench.YCSBOpts{
		Mixes: mixes, Keys: c.keysFlag, Ops: c.opsFlag,
		Cores: cores, Seed: c.seed, Chaos: c.chaosFlag,
	}
	if c.locksFlag != "" {
		opts.Locks = strings.Split(c.locksFlag, ",")
	}
	if c.full {
		if opts.Keys == 0 {
			opts.Keys = bench.YCSBKeysFull
		}
		if opts.Ops == 0 {
			opts.Ops = bench.YCSBOpsFull
		}
	}
	if c.sloFlag != "" {
		slo, err := ycsb.ParseSLO(c.sloFlag)
		if err != nil {
			return bench.YCSBOpts{}, err
		}
		opts.SLO = &slo
	}
	return opts, nil
}

// expUsage generates the -exp flag help from the registry.
func expUsage() string {
	var names []string
	for _, e := range experiments {
		n := e.name
		if len(e.aliases) > 0 {
			n += "/" + strings.Join(e.aliases, "/")
		}
		if e.explicit {
			n += " (explicit-only)"
		}
		names = append(names, n)
	}
	return "experiment to run: all, list, " + strings.Join(names, ", ")
}

// expList renders the -exp list table: every registry entry with its
// synopsis and whether -exp all includes it.
func expList() string {
	var b strings.Builder
	b.WriteString("experiments (-exp <name>; 'all' runs every non-explicit entry):\n")
	for _, e := range experiments {
		name := e.name
		if len(e.aliases) > 0 {
			name += " (" + strings.Join(e.aliases, ", ") + ")"
		}
		mark := " "
		if e.explicit {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %s %-28s %s\n", mark, name, e.synopsis)
	}
	b.WriteString("  * explicit-only: never part of -exp all\n")
	return b.String()
}

// findExperiment resolves an -exp value against the registry.
func findExperiment(name string) (experiment, bool) {
	for _, e := range experiments {
		if e.name == name {
			return e, true
		}
		for _, a := range e.aliases {
			if a == name {
				return e, true
			}
		}
	}
	return experiment{}, false
}

func main() {
	exp := flag.String("exp", "all", expUsage())
	full := flag.Bool("full", false, "run the paper's full parameters (slower)")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to this file (enables tracing)")
	metricsPath := flag.String("metrics", "", "write a metrics JSON snapshot to this file (enables metrics)")
	profilePath := flag.String("profile", "", "arm the virtual-time profiler on every kernel and write the aggregate folded-stack profile to this file")
	parallel := flag.Int("parallel", 0, "host worker-pool width for eager fork copies (0 = one per CPU, 1 = serial); virtual-time results are identical at any setting")
	seed := flag.Int64("seed", 1, "base seed for -exp stress; a failure's printed repro line names the exact seed to replay")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /procs, /flight, /profile, pprof) on this address; keeps serving after the run until interrupted")
	coresFlag := flag.String("cores", "1,2,4,8", "comma-separated core counts for -exp contention and -exp ycsb")
	checkScaling := flag.Bool("check-scaling", false, "with -exp contention: exit non-zero unless the split-lock rows clear the scaling gates (httpd 4-core >= 2x 1-core, residual share < 40%)")
	mixFlag := flag.String("mix", "A,B,C", "comma-separated YCSB mixes for -exp ycsb (A=50/50, B=95/5 read-mostly, C=read-only)")
	opsFlag := flag.Int("ops", 0, "ops per cell for -exp ycsb (0 = quick default, or the paper scale with -full)")
	keysFlag := flag.Int("keys", 0, "keyspace size for -exp ycsb (0 = quick default, or the paper scale with -full)")
	locksFlag := flag.String("locks", "bkl,smp", "comma-separated lock configurations for -exp ycsb")
	chaosFlag := flag.Bool("chaos", false, "with -exp ycsb: arm seeded fault injection on every cell instead of the two dedicated chaos cells")
	sloFlag := flag.String("slo", "", "SLO spec overriding the built-in gates for -exp ycsb and -exp stress, e.g. tput=50000,p50=200us,p99=2ms,p999=10ms,err=1%")
	flag.Parse()

	bench.Parallelism = *parallel
	if *tracePath != "" || *metricsPath != "" {
		obs.Enable()
	}
	var tsrv *telemetry.Server
	if *serveAddr != "" {
		var err error
		if tsrv, err = telemetry.Start(*serveAddr); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s/\n", tsrv.Addr)
	}
	// The -profile plane: when the telemetry server is up its plane is
	// already armed on every kernel through TrackNew — reuse it so the
	// file and /profile agree. Otherwise chain a private plane onto
	// TrackNew the same way.
	var prof *profile.Plane
	if *profilePath != "" {
		if tsrv != nil {
			prof = tsrv.Profile()
		} else {
			prof = profile.New(0)
			prof.Enable()
			old := kernel.TrackNew
			kernel.TrackNew = func(k *kernel.Kernel) {
				if old != nil {
					old(k)
				}
				k.ArmProfile(prof)
			}
		}
	}

	if *exp == "list" {
		fmt.Print(expList())
		return
	}

	cfg := &runCfg{
		full: *full, seed: *seed, coresFlag: *coresFlag,
		checkScaling: *checkScaling, mixFlag: *mixFlag,
		opsFlag: *opsFlag, keysFlag: *keysFlag, locksFlag: *locksFlag,
		chaosFlag: *chaosFlag, sloFlag: *sloFlag,
	}
	if *exp == "all" {
		for _, e := range experiments {
			if e.explicit {
				continue
			}
			die(e.run(cfg))
		}
	} else {
		e, ok := findExperiment(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n%s", *exp, expList())
			os.Exit(2)
		}
		die(e.run(cfg))
	}

	if *tracePath != "" {
		die(obs.Default.WriteTraceFile(*tracePath))
	}
	if *metricsPath != "" {
		die(obs.Default.WriteMetricsFile(*metricsPath))
	}
	if prof != nil {
		f, err := os.Create(*profilePath)
		die(err)
		err = prof.Snapshot().WriteFolded(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		die(err)
		fmt.Fprintf(os.Stderr, "profile: %d samples folded to %s\n", prof.Samples(), *profilePath)
	}
	if tsrv != nil {
		fmt.Fprintf(os.Stderr, "telemetry: run complete; still serving on http://%s/ (interrupt to exit)\n", tsrv.Addr)
		select {}
	}
}

// parseMixes parses the -mix flag's comma-separated YCSB mix names.
func parseMixes(s string) ([]ycsb.Mix, error) {
	var mixes []ycsb.Mix
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		m, ok := ycsb.MixByName(f)
		if !ok {
			return nil, fmt.Errorf("unknown YCSB mix %q (have A, B, C)", f)
		}
		mixes = append(mixes, m)
	}
	if len(mixes) == 0 {
		return nil, fmt.Errorf("-mix is empty")
	}
	return mixes, nil
}

// parseCores parses the -cores flag's comma-separated core counts.
func parseCores(s string) ([]int, error) {
	var cores []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cores entry %q", f)
		}
		cores = append(cores, n)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("-cores is empty")
	}
	return cores, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ufork-bench:", err)
		os.Exit(1)
	}
}
