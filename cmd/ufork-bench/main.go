// Command ufork-bench regenerates the paper's evaluation tables and
// figures on the simulated systems.
//
// Usage:
//
//	ufork-bench [-exp all|table1|fig3..fig9|ablation|tocttou|forkserver|forkhist|footprint|contention|stress]
//	            [-full] [-trace out.json] [-metrics out.json] [-parallel N] [-seed N] [-cores 1,2,4,8]
//	            [-check-scaling]
//
// -exp contention sweeps the httpd worker fleet and a
// kvstore-with-BGSAVE loop across simulated core counts (-cores), under
// both the big kernel lock and the split fine-grained hierarchy, and
// renders throughput against each configuration's global-lock share of
// wait time — the paper's §4.5 single-core ceiling as a measurement, next
// to what breaking the lock buys. The rows are checked in as BENCH_7.json.
// -check-scaling additionally exits non-zero unless the split-lock rows
// clear the scaling gates (CI's scaling-smoke job).
//
// -exp footprint sweeps fork depth × copy mode and reports the
// RSS/PSS/USS decomposition of the whole fork chain after each
// generation — the bytes still shared with ancestors that lazy copy
// retains and eager copy forfeits.
//
// -exp stress (never part of "all") soaks the kernel with the chaos
// harness: seeded random syscall programs across every copy mode ×
// isolation level, clean and under aggressive fault injection, with
// kernel-wide invariant audits. Any failure prints a one-line repro
// carrying the seed; -seed replays it. Every stress row must also clear
// the syscall-latency SLO (-slo overrides the built-in gate).
//
// -exp ycsb (never part of "all") runs the YCSB-style load harness:
// deterministic A/B/C mixes over zipfian keys against the kvstore (with
// BGSAVE snapshot forks firing mid-run) and the httpd worker fleet, in
// both lock configurations across -cores, recording per-op virtual-time
// latency and asserting each cell's SLO — plus one fault-injected cell
// per workload proving the gate stays honest under chaos. -mix, -ops,
// -keys, -locks, -chaos and -slo reshape the sweep; -full runs the
// paper-scale soak (10^5 keys, 10^6 ops per cell). A breached SLO exits
// non-zero with the flight-recorder tail of the offending run. The
// quick-mode rows are checked in as BENCH_8.json.
//
// Quick mode (default) uses reduced database sizes, windows and iteration
// counts; -full runs the paper's parameters (100 MB databases, 1000
// spawns, 100k pipe exchanges, second-long throughput windows).
//
// -trace enables the observability layer and writes a Chrome trace_event
// JSON of every kernel the run boots (open in chrome://tracing or
// Perfetto). -metrics enables it too and writes a JSON snapshot of the
// aggregated counters and latency histograms next to the rendered tables.
//
// -serve starts the live telemetry plane (Prometheus /metrics, JSON
// /procs of the currently booted kernel, /flight dumps, pprof) and keeps
// serving after the experiments finish so the final state can be scraped;
// interrupt to exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ufork/internal/bench"
	"ufork/internal/bench/ycsb"
	"ufork/internal/obs"
	"ufork/internal/sim"
	"ufork/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig3..fig9, ablation, tocttou, forkserver, forkhist, footprint, contention, stress, ycsb)")
	full := flag.Bool("full", false, "run the paper's full parameters (slower)")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to this file (enables tracing)")
	metricsPath := flag.String("metrics", "", "write a metrics JSON snapshot to this file (enables metrics)")
	parallel := flag.Int("parallel", 0, "host worker-pool width for eager fork copies (0 = one per CPU, 1 = serial); virtual-time results are identical at any setting")
	seed := flag.Int64("seed", 1, "base seed for -exp stress; a failure's printed repro line names the exact seed to replay")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /procs, /flight, pprof) on this address; keeps serving after the run until interrupted")
	coresFlag := flag.String("cores", "1,2,4,8", "comma-separated core counts for -exp contention and -exp ycsb")
	checkScaling := flag.Bool("check-scaling", false, "with -exp contention: exit non-zero unless the split-lock rows clear the scaling gates (httpd 4-core >= 2x 1-core, residual share < 40%)")
	mixFlag := flag.String("mix", "A,B,C", "comma-separated YCSB mixes for -exp ycsb (A=50/50, B=95/5 read-mostly, C=read-only)")
	opsFlag := flag.Int("ops", 0, "ops per cell for -exp ycsb (0 = quick default, or the paper scale with -full)")
	keysFlag := flag.Int("keys", 0, "keyspace size for -exp ycsb (0 = quick default, or the paper scale with -full)")
	locksFlag := flag.String("locks", "bkl,smp", "comma-separated lock configurations for -exp ycsb")
	chaosFlag := flag.Bool("chaos", false, "with -exp ycsb: arm seeded fault injection on every cell instead of the two dedicated chaos cells")
	sloFlag := flag.String("slo", "", "SLO spec overriding the built-in gates for -exp ycsb and -exp stress, e.g. tput=50000,p50=200us,p99=2ms,p999=10ms,err=1%")
	flag.Parse()

	bench.Parallelism = *parallel
	if *tracePath != "" || *metricsPath != "" {
		obs.Enable()
	}
	var tsrv *telemetry.Server
	if *serveAddr != "" {
		var err error
		if tsrv, err = telemetry.Start(*serveAddr); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s/\n", tsrv.Addr)
	}

	sizes := bench.RedisSizesQuick
	faasWindow := 200 * sim.Millisecond
	nginxWindow := 50 * sim.Millisecond
	spawnIters := bench.SpawnItersQuick
	ctx1 := uint64(bench.Context1TargetQuik)
	if *full {
		sizes = bench.RedisSizesFull
		faasWindow = sim.Second
		nginxWindow = 250 * sim.Millisecond
		spawnIters = bench.SpawnItersFull
		ctx1 = bench.Context1TargetFull
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		fmt.Println(bench.RenderTable1(bench.Table1()))
		ran = true
	}
	if want("fig3") || want("fig4") || want("fig5") || want("ablation") || want("tocttou") {
		rows, err := bench.RedisSweep(sizes)
		die(err)
		fmt.Println(bench.RenderRedis(rows))
		fmt.Println(bench.RenderAblation(rows))
		ran = true
	}
	if want("fig6") {
		rows, err := bench.FaaSSweep(faasWindow)
		die(err)
		fmt.Println(bench.RenderFaaS(rows))
		ran = true
	}
	if want("fig7") {
		rows, err := bench.NginxSweep(nginxWindow)
		die(err)
		fmt.Println(bench.RenderNginx(rows))
		ran = true
	}
	if want("fig8") {
		rows, err := bench.HelloWorld()
		die(err)
		fmt.Println(bench.RenderHello(rows))
		ran = true
	}
	if want("fig9") {
		rows, err := bench.Unixbench(spawnIters, ctx1)
		die(err)
		fmt.Println(bench.RenderUnixbench(rows))
		ran = true
	}
	if want("forkserver") {
		n := 40
		if *full {
			n = 200
		}
		rows, err := bench.ForkServerSweep(n)
		die(err)
		fmt.Println(bench.RenderForkServer(rows))
		ran = true
	}
	if want("forkhist") {
		iters := bench.ForkHistItersQuick
		if *full {
			iters = bench.ForkHistItersFull
		}
		rows, err := bench.ForkHist(iters)
		die(err)
		fmt.Println(bench.RenderForkHist(rows))
		ran = true
	}
	if want("contention") {
		window := sim.Time(bench.ContentionWindowQuick)
		if *full {
			window = bench.ContentionWindowFull
		}
		cores, err := parseCores(*coresFlag)
		die(err)
		rows, err := bench.ContentionSweep(window, cores)
		die(err)
		fmt.Println(bench.RenderContention(rows))
		if *checkScaling {
			die(bench.CheckContentionScaling(rows))
			fmt.Println("scaling gates passed: smp httpd >= 2x at 4 cores, residual share < 40%")
		}
		ran = true
	}
	if want("footprint") {
		rows, err := bench.Footprint()
		die(err)
		fmt.Println(bench.RenderFootprint(rows))
		ran = true
	}
	// The stress soak and the YCSB load harness are explicit-only (not
	// part of -exp all): they are robustness harnesses, not paper
	// experiments.
	if *exp == "stress" {
		rounds, maxOps := 2, 2500
		if *full {
			rounds, maxOps = 10, 8000
		}
		slo := bench.DefaultStressSLO()
		if *sloFlag != "" {
			var err error
			slo, err = ycsb.ParseSLO(*sloFlag)
			die(err)
		}
		rows := bench.Stress(*seed, rounds, maxOps)
		fmt.Println(bench.RenderStress(rows))
		die(bench.StressFailures(rows))
		die(bench.CheckStressSLO(rows, slo))
		ran = true
	}
	if *exp == "ycsb" {
		mixes, err := parseMixes(*mixFlag)
		die(err)
		cores, err := parseCores(*coresFlag)
		die(err)
		opts := bench.YCSBOpts{
			Mixes: mixes, Keys: *keysFlag, Ops: *opsFlag,
			Cores: cores, Seed: *seed, Chaos: *chaosFlag,
		}
		if *locksFlag != "" {
			opts.Locks = strings.Split(*locksFlag, ",")
		}
		if *full {
			if opts.Keys == 0 {
				opts.Keys = bench.YCSBKeysFull
			}
			if opts.Ops == 0 {
				opts.Ops = bench.YCSBOpsFull
			}
		}
		if *sloFlag != "" {
			slo, err := ycsb.ParseSLO(*sloFlag)
			die(err)
			opts.SLO = &slo
		}
		rows, err := bench.YCSBSweep(opts)
		die(err)
		fmt.Println(bench.RenderYCSB(rows))
		die(bench.YCSBFailures(rows))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *tracePath != "" {
		die(obs.Default.WriteTraceFile(*tracePath))
	}
	if *metricsPath != "" {
		die(obs.Default.WriteMetricsFile(*metricsPath))
	}
	if tsrv != nil {
		fmt.Fprintf(os.Stderr, "telemetry: run complete; still serving on http://%s/ (interrupt to exit)\n", tsrv.Addr)
		select {}
	}
}

// parseMixes parses the -mix flag's comma-separated YCSB mix names.
func parseMixes(s string) ([]ycsb.Mix, error) {
	var mixes []ycsb.Mix
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		m, ok := ycsb.MixByName(f)
		if !ok {
			return nil, fmt.Errorf("unknown YCSB mix %q (have A, B, C)", f)
		}
		mixes = append(mixes, m)
	}
	if len(mixes) == 0 {
		return nil, fmt.Errorf("-mix is empty")
	}
	return mixes, nil
}

// parseCores parses the -cores flag's comma-separated core counts.
func parseCores(s string) ([]int, error) {
	var cores []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cores entry %q", f)
		}
		cores = append(cores, n)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("-cores is empty")
	}
	return cores, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ufork-bench:", err)
		os.Exit(1)
	}
}
