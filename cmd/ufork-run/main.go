// Command ufork-run executes a minipy (Python-subset) script inside a
// μFork μprocess: the script is compiled, installed into simulated tagged
// memory, and run on the interpreter whose every variable cell lives
// behind CHERI capabilities. Script print() calls travel through the
// kernel's write path to your terminal.
//
// Usage:
//
//	ufork-run script.py          # run a file
//	echo 'print(2**10)' | ufork-run   # run stdin
//	ufork-run -forks 3 script.py # also fork N children re-running main
//
// The -forks flag demonstrates the Zygote pattern: each child attaches to
// the inherited (relocated) runtime and calls main() again.
//
// -trace writes a Chrome trace_event JSON of the run (syscalls, fork
// phases, faults — open in chrome://tracing or Perfetto); -metrics writes
// a JSON snapshot of the kernel's counters and latency histograms. Either
// flag enables the observability layer.
//
// -serve starts the live telemetry plane (Prometheus /metrics, JSON
// /procs, /flight dumps, pprof) and keeps serving after the run finishes
// so the final state can be scraped.
//
// -smaps prints the script μprocess's memory map after the run: per-
// segment mapped/shared/private pages with the RSS/PSS/USS and shared
// clean/dirty decomposition, captured just before the process exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"ufork"
	"ufork/internal/alloc"
	"ufork/internal/kernel"
	"ufork/internal/minipy"
	"ufork/internal/obs"
	"ufork/internal/telemetry"
)

func main() {
	forks := flag.Int("forks", 0, "fork N children that re-run main() on the warm runtime")
	stats := flag.Bool("stats", false, "print kernel statistics after the run")
	smaps := flag.Bool("smaps", false, "print the script μprocess's memory map (per-segment RSS/PSS/USS, shared clean/dirty) after the run")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to this file (enables tracing)")
	metricsPath := flag.String("metrics", "", "write a metrics JSON snapshot to this file (enables metrics)")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /procs, /flight, pprof) on this address; keeps serving after the run until interrupted")
	flag.Parse()

	if *tracePath != "" || *metricsPath != "" {
		obs.Enable()
	}
	var tsrv *telemetry.Server
	if *serveAddr != "" {
		var err error
		if tsrv, err = telemetry.Start(*serveAddr); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s/\n", tsrv.Addr)
	}

	var src []byte
	var err error
	if flag.NArg() >= 1 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatal(err)
	}

	program, err := minipy.Compile(string(src))
	if err != nil {
		log.Fatal(err)
	}

	spec := ufork.HelloWorldSpec()
	spec.Name = "script"
	spec.HeapPages = 2048
	spec.AllocMetaPages = 32
	sys := ufork.NewSystem(ufork.Options{
		Strategy:  ufork.CoPA,
		Isolation: ufork.IsolationFull,
		Cores:     4,
		Spec:      &spec,
	})

	var stdout *kernel.Console
	var smapsText string
	if _, err := sys.Main(func(p *ufork.Proc) {
		k := p.Kernel()
		if of, err := p.FDs.Get(1); err == nil {
			stdout, _ = of.File.(*kernel.Console)
		}
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			log.Fatal(err)
		}
		rt, err := minipy.Install(p, a, program)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rt.RunMain(); err != nil {
			fmt.Fprintln(os.Stderr, "ufork-run:", err)
			k.Exit(p, 1)
		}
		if mainIdx, ok := program.FuncIndex("main"); ok && *forks == 0 {
			if _, err := rt.CallIndex(mainIdx); err != nil {
				fmt.Fprintln(os.Stderr, "ufork-run:", err)
				k.Exit(p, 1)
			}
		}
		for i := 0; i < *forks; i++ {
			_, err := k.Fork(p, func(c *ufork.Proc) {
				ck := c.Kernel()
				crt, err := minipy.Attach(c)
				if err != nil {
					ck.Exit(c, 1)
				}
				if idx, ok := program.FuncIndex("main"); ok {
					if _, err := crt.CallIndex(idx); err != nil {
						ck.Exit(c, 1)
					}
				}
				ck.Exit(c, 0)
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				log.Fatal(err)
			}
		}
		if *smaps {
			// Capture inside the μprocess: its mappings are torn down the
			// moment it exits, so the walk must happen before then.
			if r, err := k.Smaps(p, 0); err != nil {
				fmt.Fprintln(os.Stderr, "ufork-run: smaps:", err)
			} else {
				smapsText = kernel.RenderSmaps(r)
			}
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "[virtual time %v, %d syscalls, %d forks, %d page faults]\n",
				p.Now(), k.Stats.Syscalls.Value(), k.Stats.Forks.Value(), k.Stats.PageFaults.Value())
		}
	}); err != nil {
		log.Fatal(err)
	}
	sys.Run()

	if stdout != nil {
		os.Stdout.Write(stdout.Out)
	}
	if smapsText != "" {
		fmt.Fprint(os.Stderr, smapsText)
	}
	if *tracePath != "" {
		if err := obs.Default.WriteTraceFile(*tracePath); err != nil {
			log.Fatal(err)
		}
	}
	if *metricsPath != "" {
		if err := obs.Default.WriteMetricsFile(*metricsPath); err != nil {
			log.Fatal(err)
		}
	}
	if tsrv != nil {
		fmt.Fprintf(os.Stderr, "telemetry: run complete; still serving on http://%s/ (interrupt to exit)\n", tsrv.Addr)
		select {}
	}
}
