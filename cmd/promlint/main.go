// Command promlint validates Prometheus text exposition format (0.0.4)
// without any external promtool dependency. CI pipes a scraped /metrics
// payload through it; exit status 0 means the exposition is valid.
//
// Usage:
//
//	promlint [file]       # default: stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ufork/internal/telemetry"
)

func main() {
	flag.Parse()
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() >= 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		r, name = f, flag.Arg(0)
	}
	errs := telemetry.Lint(r)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: ok\n", name)
}
