// Command promlint validates Prometheus text exposition format (0.0.4)
// without any external promtool dependency. CI pipes a scraped /metrics
// payload through it; exit status 0 means the exposition is valid.
//
// Usage:
//
//	promlint [-require fam1,fam2] [file]       # default: stdin
//
// -require names metric families that must be present with at least one
// sample — CI's guard that an observability plane (e.g. the causal
// tracer's ufork_trace_* families) actually exported data, not just that
// whatever was exported parses.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ufork/internal/telemetry"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must have samples")
	flag.Parse()
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() >= 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		r, name = f, flag.Arg(0)
	}
	buf, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	errs := telemetry.Lint(bytes.NewReader(buf))
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
	}
	if *require != "" {
		var families []string
		for _, f := range strings.Split(*require, ",") {
			if f = strings.TrimSpace(f); f != "" {
				families = append(families, f)
			}
		}
		for _, f := range telemetry.MissingFamilies(bytes.NewReader(buf), families) {
			fmt.Fprintf(os.Stderr, "promlint: %s: required family %s has no samples\n", name, f)
			errs = append(errs, fmt.Errorf("missing %s", f))
		}
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: ok\n", name)
}
