// Command covreport turns a Go coverprofile into a per-package coverage
// report with an enforced floor.
//
// Usage:
//
//	go test ./... -coverprofile=cover.out
//	covreport -profile cover.out [-floor 50] [-md]
//
// It aggregates statement coverage per package, prints a table (GitHub
// markdown with -md, for piping into $GITHUB_STEP_SUMMARY), and exits
// nonzero if any package falls below the floor percentage. -floor 0
// reports without enforcing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

type pkgCov struct {
	total   int
	covered int
}

func (c pkgCov) pct() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

func main() {
	profile := flag.String("profile", "cover.out", "coverprofile produced by go test -coverprofile")
	floor := flag.Float64("floor", 0, "minimum per-package statement coverage percentage (0 = report only)")
	md := flag.Bool("md", false, "emit a GitHub markdown table instead of plain text")
	flag.Parse()

	pkgs, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covreport:", err)
		os.Exit(1)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "covreport: profile contains no coverage blocks")
		os.Exit(1)
	}

	names := make([]string, 0, len(pkgs))
	var all pkgCov
	for name, c := range pkgs {
		names = append(names, name)
		all.total += c.total
		all.covered += c.covered
	}
	sort.Strings(names)

	var failed []string
	if *md {
		fmt.Println("| package | statements | covered | coverage | floor |")
		fmt.Println("|---|---:|---:|---:|:---:|")
	} else {
		fmt.Printf("%-40s %10s %8s %9s\n", "package", "statements", "covered", "coverage")
	}
	for _, name := range names {
		c := pkgs[name]
		mark := ""
		if *floor > 0 {
			if c.pct() < *floor {
				mark = "BELOW"
				failed = append(failed, fmt.Sprintf("%s %.1f%% < %.1f%%", name, c.pct(), *floor))
			} else {
				mark = "ok"
			}
		}
		if *md {
			fmt.Printf("| %s | %d | %d | %.1f%% | %s |\n", name, c.total, c.covered, c.pct(), mark)
		} else {
			fmt.Printf("%-40s %10d %8d %8.1f%% %s\n", name, c.total, c.covered, c.pct(), mark)
		}
	}
	if *md {
		fmt.Printf("| **total** | %d | %d | **%.1f%%** | |\n", all.total, all.covered, all.pct())
	} else {
		fmt.Printf("%-40s %10d %8d %8.1f%%\n", "total", all.total, all.covered, all.pct())
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "covreport: %d package(s) below the %.1f%% floor:\n", len(failed), *floor)
		for _, f := range failed {
			fmt.Fprintln(os.Stderr, " ", f)
		}
		os.Exit(1)
	}
}

// parseProfile aggregates a coverprofile's blocks per package. Profile
// lines look like:
//
//	ufork/internal/vm/vm.go:12.20,14.2 3 1
//
// i.e. file:location numStatements hitCount. With -coverpkg, `go test
// ./...` appends every test binary's view of every package to one file,
// so the same block appears many times: blocks are deduplicated by
// file:location and a block counts as covered if ANY binary hit it (the
// union, which is what mode: set semantics mean).
func parseProfile(name string) (map[string]pkgCov, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type block struct {
		stmts int
		hit   bool
	}
	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		colon := strings.LastIndex(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		fields := strings.Fields(line[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("malformed statement count in %q", line)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("malformed hit count in %q", line)
		}
		key := line[:colon] + ":" + fields[0]
		b := blocks[key]
		b.stmts = stmts
		b.hit = b.hit || count > 0
		blocks[key] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	pkgs := make(map[string]pkgCov)
	for key, b := range blocks {
		file := key[:strings.Index(key, ":")]
		c := pkgs[path.Dir(file)]
		c.total += b.stmts
		if b.hit {
			c.covered += b.stmts
		}
		pkgs[path.Dir(file)] = c
	}
	return pkgs, nil
}
